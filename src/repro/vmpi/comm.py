"""Virtual MPI communicator on the discrete-event engine.

Rank programs are generator functions ``def program(ctx): ...`` receiving
a :class:`RankCtx`.  All communication operations are sub-generators used
with ``yield from``::

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, np.arange(4), tag=7)
        else:
            msg = yield from ctx.recv(source=0, tag=7)

Semantics follow MPI's matched, tagged, per-pair-ordered point-to-point
model: a receive matches the oldest pending message from the requested
source (or ``ANY_SOURCE``) with the requested tag (or ``ANY_TAG``).
Message transfer time is charged by the communicator's
:class:`~repro.vmpi.costmodel.NetworkModel`; the *sender* blocks only for
the injection time (eager protocol with DMA offload, as on BG/Q's
messaging unit), while the payload lands in the destination inbox when
the network delivers it.

Rank inboxes are :class:`Mailbox` stores: pending messages are indexed
by ``(source, tag)`` key so the common exact-match receive is an O(1)
dict lookup + deque pop, and wildcard receives (``ANY_SOURCE`` /
``ANY_TAG``) fall back to a min-over-candidate-keys scan that preserves
the oldest-matching-message-wins FIFO order of a linear inbox exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Iterable, NamedTuple

from repro.analysis.runtime import CollectiveOrderChecker
from repro.sim.engine import Engine, Get, GetTimeout, SimError, Timeout
from repro.sim.trace import Tracer
from repro.vmpi.costmodel import NetworkModel, UniformNetwork, nbytes_of

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Mailbox",
    "Message",
    "RankCtx",
    "RecvTimeoutError",
    "VComm",
]

ANY_SOURCE = -1
ANY_TAG = -1

_USE_COMM_DEFAULT = object()
"""Sentinel: ``recv(timeout=...)`` falls back to the communicator-wide
``recv_timeout`` unless the call overrides it (``None`` disables)."""


class RecvTimeoutError(SimError):
    """A matched receive waited longer than its timeout.

    The message names rank, requested source/tag, and the virtual time;
    the same facts are attached as attributes (``rank``, ``source``,
    ``tag``, ``timeout``, ``at`` — source/tag as requested, so
    ``ANY_SOURCE`` / ``ANY_TAG`` stay ``-1``) so recovery code such as
    the fault policy's master collection loop can act on *what* timed
    out instead of parsing the string.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int | None = None,
        source: int | None = None,
        tag: int | None = None,
        timeout: float | None = None,
        at: float | None = None,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.source = source
        self.tag = tag
        self.timeout = timeout
        self.at = at


def _fmt_source(source: int) -> str:
    return "ANY_SOURCE" if source == ANY_SOURCE else str(source)


def _fmt_tag(tag: int) -> str:
    return "ANY_TAG" if tag == ANY_TAG else str(tag)


class Message(NamedTuple):
    """One in-flight or delivered message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    sent_at: float


class Mailbox:
    """Rank inbox with per-``(source, tag)`` FIFO indexes.

    Implements the engine's store protocol (``_offer`` / ``_take`` /
    ``_park`` / ``_cancel``) so :class:`~repro.sim.engine.Engine` drives
    it exactly like a plain :class:`~repro.sim.engine.Store`, plus the
    ``describe_get`` / ``waits_on`` diagnostic hooks used by deadlock
    reports.

    Pending messages live in ``_queues[(src, tag)]`` deques of
    ``(arrival_seq, message)``; ``_src_keys`` / ``_tag_keys`` map one
    fixed coordinate to the set of live keys so single-wildcard receives
    only scan matching keys.  Empty queues are removed eagerly — the
    wildcard scans and the key sets never see dead keys, and memory stays
    proportional to the number of genuinely pending messages.  The
    arrival sequence number makes wildcard matching exact: the candidate
    queue heads are each key's oldest message, so the minimum head seq is
    the globally oldest matching message — precisely what a linear scan
    of a single FIFO inbox would return.
    """

    __slots__ = (
        "engine",
        "name",
        "obs_log",
        "_rank_names",
        "_queues",
        "_src_keys",
        "_tag_keys",
        "_getters",
        "_seq",
    )

    def __init__(
        self, engine: Engine, name: str, rank_names: list[str] | None = None
    ) -> None:
        self.engine = engine
        self.name = name
        self.obs_log = None
        """Optional :class:`~repro.obs.hooks.CommStats` event log; when
        set, every message consumed out of this inbox (matched on arrival
        or popped by a receive) appends a ``(src, dst, -1)`` entry so
        per-pair outstanding counts close."""
        self._rank_names = rank_names
        self._queues: dict[tuple[int, int], deque[tuple[int, Message]]] = {}
        self._src_keys: dict[int, set[tuple[int, int]]] = {}
        self._tag_keys: dict[int, set[tuple[int, int]]] = {}
        # parked getters: (process, source-or-None, tag-or-None), FIFO.
        # A rank blocks on at most one receive, so this deque is tiny.
        self._getters: deque[tuple[Any, int | None, int | None]] = deque()
        self._seq = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        # integer count for a debug repr: order cannot matter
        pending = sum(len(q) for q in self._queues.values())  # repro: noqa(DET002)
        return f"<Mailbox {self.name} items={pending} waiters={len(self._getters)}>"

    @property
    def items(self) -> list[Message]:
        """All pending messages in arrival order (diagnostic view)."""
        merged = [entry for q in self._queues.values() for entry in q]
        merged.sort()
        return [m for _, m in merged]

    # --------------------------------------------------- engine store protocol
    def _offer(self, item: Message) -> Any:
        getters = self._getters
        if getters:
            src, tag = item.src, item.tag
            for i, (getter, want_src, want_tag) in enumerate(getters):
                if (want_src is None or want_src == src) and (
                    want_tag is None or want_tag == tag
                ):
                    del getters[i]
                    log = self.obs_log
                    if log is not None:
                        log.append((item.src, item.dst, -1))
                    return getter
        key = (item.src, item.tag)
        q = self._queues.get(key)
        if q is None:
            q = self._queues[key] = deque()
            self._src_keys.setdefault(item.src, set()).add(key)
            self._tag_keys.setdefault(item.tag, set()).add(key)
        q.append((self._seq, item))
        self._seq += 1
        return None

    def _take(self, command: Get) -> tuple[bool, Message | None]:
        src, tag = command.source, command.tag
        queues = self._queues
        if src is not None and tag is not None:
            key = (src, tag)
            q = queues.get(key)
            if q is None:
                return False, None
            item = q.popleft()[1]
            if not q:
                self._drop_key(key)
            log = self.obs_log
            if log is not None:
                log.append((item.src, item.dst, -1))
            return True, item
        if tag is not None:
            keys: Any = self._tag_keys.get(tag)
        elif src is not None:
            keys = self._src_keys.get(src)
        else:
            keys = queues
        if not keys:
            return False, None
        best = min(keys, key=lambda k: queues[k][0][0])
        q = queues[best]
        item = q.popleft()[1]
        if not q:
            self._drop_key(best)
        log = self.obs_log
        if log is not None:
            log.append((item.src, item.dst, -1))
        return True, item

    def _drop_key(self, key: tuple[int, int]) -> None:
        del self._queues[key]
        srcs = self._src_keys[key[0]]
        srcs.discard(key)
        if not srcs:
            del self._src_keys[key[0]]
        tags = self._tag_keys[key[1]]
        tags.discard(key)
        if not tags:
            del self._tag_keys[key[1]]

    def _park(self, proc: Any, command: Get) -> Any:
        entry = (proc, command.source, command.tag)
        self._getters.append(entry)
        return entry

    def _cancel(self, entry: Any) -> bool:
        try:
            self._getters.remove(entry)
        except ValueError:
            return False
        return True

    # ------------------------------------------------------- diagnostic hooks
    def describe_get(self, command: Get) -> str:
        """Human-readable form of a blocked receive, for deadlock reports."""
        src = ANY_SOURCE if command.source is None else command.source
        tag = ANY_TAG if command.tag is None else command.tag
        return f"recv(source={_fmt_source(src)}, tag={_fmt_tag(tag)})"

    def waits_on(self, command: Get) -> str | None:
        """Name of the rank a blocked receive waits on (None if any-source)."""
        if command.source is None or self._rank_names is None:
            return None
        return self._rank_names[command.source]


class VComm:
    """A communicator: ``size`` ranks, each with an inbox, over a network."""

    def __init__(
        self,
        size: int,
        network: NetworkModel | None = None,
        engine: Engine | None = None,
        tracer: Tracer | None = None,
        sizer: Callable[[Any], int] = nbytes_of,
        trace_p2p: bool = True,
        recv_timeout: float | None = None,
        check_collectives: bool = True,
        obs: Any | None = None,
        coll_policy: Any | None = None,
        faults: Any | None = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"communicator needs >= 1 rank, got {size}")
        if recv_timeout is not None and recv_timeout <= 0:
            raise ValueError(f"recv_timeout must be > 0, got {recv_timeout}")
        self.size = size
        self.engine = engine if engine is not None else Engine()
        self.network = network if network is not None else UniformNetwork()
        self.tracer = tracer
        self.sizer = sizer
        self.trace_p2p = trace_p2p
        """When False, per-message mpi_send/mpi_recv spans are suppressed
        (large simulations record phase-level spans instead; dropping the
        per-message ones keeps the tracer from dominating memory)."""
        self.recv_timeout = recv_timeout
        """Default timeout (virtual seconds) for every matched receive on
        this communicator; ``None`` waits forever.  A receive that trips
        it raises :class:`RecvTimeoutError` naming rank/source/tag/time
        instead of hanging the engine on a lost message."""
        self.collective_checker: CollectiveOrderChecker | None = (
            CollectiveOrderChecker(size) if check_collectives else None
        )
        """Online collective-sequence verifier; the collectives in
        :mod:`repro.vmpi.collectives` record each entry here so a
        schedule divergence raises
        :class:`~repro.analysis.runtime.CollectiveOrderError` naming the
        offending ranks instead of deadlocking opaquely."""
        self._rank_names = [f"rank{r}" for r in range(size)]
        self._inboxes: list[Mailbox] = [
            Mailbox(self.engine, f"inbox[{r}]", self._rank_names)
            for r in range(size)
        ]
        self.obs = obs
        """Attached :class:`~repro.obs.metrics.MetricsRegistry`, or None."""
        self.coll_policy = coll_policy
        """Optional :class:`~repro.vmpi.algoselect.CollectivePolicy`;
        collectives called with ``algo="auto"`` consult it to pick the
        cheapest algorithm for (p, nbytes) on this network."""
        self.faults = faults
        """Optional :class:`~repro.faults.inject.FaultInjector`.  When
        None (the default) the p2p send paths and :meth:`RankCtx.compute`
        pay one attribute check each and nothing else — the same
        zero-cost gating discipline as ``comm_stats``.  When set, sends
        consult :meth:`~repro.faults.inject.FaultInjector.drop_message`
        and compute charges are scaled by straggler windows; crash events
        are armed against the rank processes in :meth:`run`."""
        self.coll_stats = None
        """Per-(op, algo) collective counts + per-op simulated-duration
        histograms (:class:`~repro.obs.hooks.CollectiveStats`), built iff
        ``obs`` is set.  Collectives append ``(op, algo, duration)``
        tuples; folding happens lazily at scrape time."""
        self.comm_stats = None
        """Per-(src, dst) traffic matrices + outstanding-message HWM
        (:class:`~repro.obs.hooks.CommStats`), built iff ``obs`` is set.
        When None, the p2p hot paths pay one attribute check per message
        and nothing else (the ``_fast_p2p`` gating discipline)."""
        self._obs_log = None
        """``comm_stats.log`` when attached — the hot paths append event
        tuples straight onto the stats log, skipping the method call."""
        if obs is not None:
            from repro.obs.hooks import CollectiveStats, CommStats

            self.coll_stats = CollectiveStats().attach(obs)
            self.comm_stats = CommStats(size).attach(obs)
            self._obs_log = self.comm_stats.log
            for box in self._inboxes:
                box.obs_log = self._obs_log
            self.engine.attach_obs(obs)
        self._sends = 0
        self._bytes_sent = 0
        # Hoisted network-model lookups: one getattr per communicator
        # instead of one per message on the send fast path.
        self._wire_time = getattr(self.network, "wire_time", None)
        self._p2p_time = self.network.p2p_time
        self._injection_time = self.network.injection_time
        self._pair_time = getattr(self.network, "pair_time", None)
        """Optional combined (p2p, wire) lookup — models declaring it
        promise both costs are pure in (src, dst, nbytes), letting the
        send path make one call instead of two."""
        self._wire_busy_until: dict[tuple[int, int], float] = {}
        """Per (src, dst) pair: when the wire frees up.  Back-to-back
        messages between the same pair serialize at link bandwidth —
        without this, pipelined segment streams would exceed the link
        rate."""
        self._rank_finish_times: list[float] | None = None
        """Per-rank virtual finish times, populated by :meth:`run` (or by
        the vector executor from its clock vector); consumed by the
        critical-path / attribution passes in :mod:`repro.obs`."""

    def _delivery_delay(self, src: int, dst: int, nbytes: int, now: float) -> float:
        """Delay until the message lands in the destination inbox,
        accounting for wire occupancy of earlier messages on this pair."""
        pair_fn = self._pair_time
        if pair_fn is not None:
            transfer, wire = pair_fn(src, dst, nbytes)
        else:
            transfer = self._p2p_time(src, dst, nbytes, now=now)
            wire_fn = self._wire_time
            wire = wire_fn(src, dst, nbytes) if wire_fn is not None else 0.0
        key = (src, dst)
        busy = self._wire_busy_until
        start = busy.get(key, 0.0)
        if start < now:
            start = now
        end_wire = start + wire
        busy[key] = end_wire
        return max(now + transfer, end_wire) - now

    # ------------------------------------------------------------------ stats
    @property
    def total_sends(self) -> int:
        return self._sends

    @property
    def total_bytes(self) -> int:
        return self._bytes_sent

    def bulk_account(self, messages: int, nbytes: int) -> None:
        """Fold a batch of vector-path messages into the send totals.

        The vectorized SPMD executor models whole tree levels without
        calling ``post``/``send``, so it reports its message traffic
        here in aggregate; ``total_sends``/``total_bytes`` stay equal to
        what the scalar scheduler would have counted message by message.
        """
        self._sends += messages
        self._bytes_sent += nbytes

    # ------------------------------------------------------------------- run
    def run(
        self,
        programs: Iterable[Callable[["RankCtx"], Generator]],
        until: float | None = None,
    ) -> tuple[float, list[Any]]:
        """Instantiate one rank per program and run the DES to completion.

        ``programs`` may be a single callable (replicated across all ranks,
        SPMD style) or a sequence of exactly ``size`` callables.  Returns
        ``(virtual end time, per-rank return values)``.
        """
        if callable(programs):
            programs = [programs] * self.size
        programs = list(programs)
        if len(programs) != self.size:
            raise ValueError(
                f"got {len(programs)} programs for {self.size} ranks"
            )
        ctxs = [RankCtx(self, r) for r in range(self.size)]
        procs = [
            self.engine.process(prog(ctx), name=self._rank_names[r])
            for r, (prog, ctx) in enumerate(zip(programs, ctxs))
        ]
        if self.faults is not None:
            self.faults.arm(self.engine, procs)
        t = self.engine.run(until=until)
        if until is None:
            # the run ends when the last rank finishes; stale timer
            # events (satisfied recv timeouts draining from the heap)
            # must not inflate the reported simulated time
            t = self.engine.finish_time
        self._rank_finish_times = [p.finished_at for p in procs]
        return t, [p.value for p in procs]

    @property
    def rank_finish_times(self) -> list[float] | None:
        """Per-rank virtual finish times of the last :meth:`run` (the
        vector executor records its final clock vector here); ``None``
        before any run completes."""
        return self._rank_finish_times

    def set_rank_finish_times(self, times: list[float]) -> None:
        """Record per-rank finish times on behalf of an executor that
        bypasses :meth:`run` (the vectorized SPMD path)."""
        if len(times) != self.size:
            raise ValueError(
                f"got {len(times)} finish times for {self.size} ranks"
            )
        self._rank_finish_times = [float(t) for t in times]


class RankCtx:
    """Per-rank handle passed to a rank program."""

    __slots__ = ("comm", "rank", "_name", "_inbox", "_coll_seq")

    def __init__(self, comm: VComm, rank: int) -> None:
        if not 0 <= rank < comm.size:
            raise ValueError(f"rank {rank} out of range for size {comm.size}")
        self.comm = comm
        self.rank = rank
        self._name = comm._rank_names[rank]
        self._inbox = comm._inboxes[rank]
        self._coll_seq = 0
        """Per-rank collective call counter; gives every collective a
        unique reserved tag block (see :func:`repro.vmpi.collectives._next_tag`)."""

    # ------------------------------------------------------------- properties
    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def now(self) -> float:
        return self.comm.engine._now

    # ------------------------------------------------------------ time charge
    def compute(self, seconds: float, label: str = "compute") -> Generator:
        """Charge ``seconds`` of modeled computation to this rank.

        If a fault injector is attached and a straggler window covers the
        charge's start time, the charge is multiplied by the window's
        slowdown factor."""
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds}")
        comm = self.comm
        t0 = comm.engine._now
        faults = comm.faults
        if faults is not None:
            seconds = faults.scale_compute(self.rank, float(seconds), t0)
        yield float(seconds)
        self.record_span(label, t0)

    # ------------------------------------------------------------------- p2p
    def send(self, dest: int, payload: Any, tag: int = 0) -> Generator:
        """Blocking-for-injection send; completes when the NIC takes over."""
        comm = self.comm
        if not 0 <= dest < comm.size:
            raise ValueError(f"send to invalid rank {dest} (size {comm.size})")
        if tag < 0:
            raise ValueError(f"send tag must be >= 0, got {tag}")
        nbytes = comm.sizer(payload)
        t0 = comm.engine._now
        inj = comm._injection_time(nbytes)
        delay = comm._delivery_delay(self.rank, dest, nbytes, t0)
        msg = Message(self.rank, dest, tag, payload, nbytes, t0)
        comm._sends += 1
        comm._bytes_sent += nbytes
        log = comm._obs_log
        if log is not None:
            log.append((self.rank, dest, nbytes))
        faults = comm.faults
        if faults is None or not faults.drop_message(self.rank, dest, t0):
            comm.engine.put_later(max(delay, inj), comm._inboxes[dest], msg)
        if inj > 0:
            yield inj + 0.0
        if comm.trace_p2p and comm.tracer is not None:
            comm.tracer.record(self._name, "mpi_send", t0, comm.engine._now)
        return msg

    def post(self, dest: int, payload: Any, tag: int = 0) -> float:
        """Non-blocking half of :meth:`send`: inject the message and
        return the injection-occupancy seconds still to be charged.

        Exactly :meth:`send` up to its ``yield`` — callers on the hot
        path do ``inj = ctx.post(...)`` followed by ``yield inj``,
        skipping one generator frame per message.  Callers own the
        injection charge and any ``mpi_send`` trace span; the collectives
        use this only when p2p tracing is off.
        """
        comm = self.comm
        if not 0 <= dest < comm.size:
            raise ValueError(f"send to invalid rank {dest} (size {comm.size})")
        if tag < 0:
            raise ValueError(f"send tag must be >= 0, got {tag}")
        nbytes = comm.sizer(payload)
        t0 = comm.engine._now
        inj = comm._injection_time(nbytes)
        delay = comm._delivery_delay(self.rank, dest, nbytes, t0)
        msg = Message(self.rank, dest, tag, payload, nbytes, t0)
        comm._sends += 1
        comm._bytes_sent += nbytes
        log = comm._obs_log
        if log is not None:
            log.append((self.rank, dest, nbytes))
        faults = comm.faults
        if faults is None or not faults.drop_message(self.rank, dest, t0):
            comm.engine.put_later(max(delay, inj), comm._inboxes[dest], msg)
        return inj

    def recv_cmd(self, source: int | None, tag: int | None) -> "Get":
        """The :class:`Get` command :meth:`recv` would yield (``None`` =
        wildcard), with no timeout.  Hot paths do ``msg = yield
        ctx.recv_cmd(src, tag)`` to skip one generator frame per message;
        valid only when the communicator's ``recv_timeout`` is ``None``
        (otherwise :meth:`recv`'s timeout wrapping is load-bearing)."""
        return Get(self._inbox, source=source, tag=tag)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None | object = _USE_COMM_DEFAULT,
    ) -> Generator:
        """Blocking matched receive; returns the :class:`Message`.

        ``timeout`` (virtual seconds) bounds the wait; it defaults to the
        communicator's ``recv_timeout`` and may be overridden per call
        (``None`` waits forever).  On expiry a :class:`RecvTimeoutError`
        describing rank, source, tag, and sim-time is raised in the rank
        program.
        """
        comm = self.comm
        if source != ANY_SOURCE and not 0 <= source < comm.size:
            raise ValueError(f"recv from invalid rank {source}")
        if timeout is _USE_COMM_DEFAULT:
            timeout = comm.recv_timeout
        t0 = comm.engine._now
        try:
            msg = yield Get(
                self._inbox,
                timeout=timeout,  # type: ignore[arg-type]
                source=None if source == ANY_SOURCE else source,
                tag=None if tag == ANY_TAG else tag,
            )
        except GetTimeout:
            detail = f"recv(source={_fmt_source(source)}, tag={_fmt_tag(tag)})"
            raise RecvTimeoutError(
                f"rank {self.rank}: {detail} timed out after {timeout:g} "
                f"virtual seconds at t={self.now:g} — sender never "
                "injected a matching message (lost-message or protocol "
                "mismatch)",
                rank=self.rank,
                source=source,
                tag=tag,
                timeout=timeout,  # type: ignore[arg-type]
                at=self.now,
            ) from None
        if comm.trace_p2p and comm.tracer is not None:
            comm.tracer.record(self._name, "mpi_recv", t0, comm.engine._now)
        return msg

    def sendrecv(
        self, dest: int, payload: Any, source: int, tag: int = 0
    ) -> Generator:
        """Concurrent send+recv (the exchange step of recursive doubling).

        The send's injection and the receive's wait overlap: we post the
        send (message departs immediately) and then block on the receive;
        total charged time is max(injection, wait) as on real hardware
        with independent DMA.
        """
        comm = self.comm
        t0 = comm.engine._now
        nbytes = comm.sizer(payload)
        inj = comm._injection_time(nbytes)
        delay = comm._delivery_delay(self.rank, dest, nbytes, t0)
        msg_out = Message(self.rank, dest, tag, payload, nbytes, t0)
        comm._sends += 1
        comm._bytes_sent += nbytes
        log = comm._obs_log
        if log is not None:
            log.append((self.rank, dest, nbytes))
        faults = comm.faults
        if faults is None or not faults.drop_message(self.rank, dest, t0):
            comm.engine.put_later(max(delay, inj), comm._inboxes[dest], msg_out)
        msg_in = yield from self.recv(source=source, tag=tag)
        # ensure at least injection time elapsed on our side
        elapsed = self.now - t0
        if elapsed < inj:
            yield inj - elapsed + 0.0
        return msg_in

    # ----------------------------------------------------------------- trace
    def _trace(self, label: str, t0: float) -> None:
        if self.comm.tracer is not None and self.comm.trace_p2p:
            self.comm.tracer.record(self._name, label, t0, self.now)

    def record_span(self, label: str, t0: float) -> None:
        """Record an explicit phase-level span ``[t0, now]`` for this rank.

        Rank programs use this to attribute virtual time to named
        functions (``gradient_loss``, ``sync_weights_master``, ...) — the
        raw data behind the paper's Figures 2-5."""
        if self.comm.tracer is not None:
            self.comm.tracer.record(self._name, label, t0, self.now)
