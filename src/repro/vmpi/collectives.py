"""Collective algorithms over virtual-MPI point-to-point.

These are the textbook algorithms BG/Q's optimized MPI library (on PAMI)
uses for medium-size messages: binomial-tree broadcast and reduce,
recursive-doubling allreduce (with the MPICH fold-in for non-power-of-two
communicators), tree gather/scatter.  Because they execute as real
message exchanges on the DES, their cost *emerges* from the network model
— log(P) depth, link contention on the torus, and so on — and the paper's
"sockets -> MPI_Bcast" upgrade (Section V-B) can be ablated by swapping
:func:`bcast` for :func:`serial_bcast`.

All collectives must be invoked by *every* rank of the communicator in
the same order (SPMD discipline).  A per-rank collective sequence number
is baked into the message tags, so a rank that skips a collective causes
a clean :class:`~repro.sim.engine.DeadlockError` instead of silent payload
cross-talk.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Timeout
from repro.vmpi.comm import RankCtx
from repro.vmpi.ops import SUM, CONCAT, ReduceOp

__all__ = [
    "bcast",
    "serial_bcast",
    "reduce",
    "allreduce",
    "ordered_reduce",
    "gather",
    "scatter",
    "allgather",
    "barrier",
]

_COLL_TAG_BASE = 1_000_000  # repro: noqa(VMPI004) the band this rule reserves
_COLL_TAG_STRIDE = 8


def _next_tag(ctx: RankCtx) -> int:
    seq = ctx._coll_seq
    ctx._coll_seq = seq + 1
    return _COLL_TAG_BASE + seq * _COLL_TAG_STRIDE


def _record(ctx: RankCtx, operation: str) -> None:
    """Ledger hook: note that this rank entered a public collective.

    Recording happens *before* any message traffic, so a schedule
    divergence (rank 0 in ``bcast`` while rank 1 is in ``barrier``) is
    caught by the communicator's
    :class:`~repro.analysis.runtime.CollectiveOrderChecker` the moment
    the second rank arrives — long before the mismatch could drain the
    event queue into an opaque deadlock.  Nested collectives (``barrier``
    -> ``allreduce``) record on every rank identically, so composition
    stays divergence-free.
    """
    checker = ctx.comm.collective_checker
    if checker is not None:
        checker.record(ctx.rank, operation)


def bcast(
    ctx: RankCtx, value: Any = None, root: int = 0, segment_bytes: int | None = None
) -> Generator:
    """Binomial-tree broadcast; returns the root's value on every rank.

    ``segment_bytes`` enables large-message pipelining for
    :class:`~repro.vmpi.costmodel.PayloadStub` payloads: the stub is
    split into segments broadcast back-to-back, and because senders block
    only for injection the segments stream down the tree concurrently —
    the DES analogue of MPI's pipelined/van-de-Geijn broadcast, without
    which tree depth would over-charge multi-megabyte weight syncs.
    """
    from repro.vmpi.costmodel import PayloadStub

    _record(ctx, "bcast")
    if segment_bytes is not None and segment_bytes > 0:
        # Every rank must agree on the segment count, which depends on the
        # root's payload size — ship it in a tiny header bcast first.
        nbytes = value.nbytes if isinstance(value, PayloadStub) else None
        header = yield from _bcast_once(ctx, nbytes, root)
        if header is not None and header > segment_bytes:
            nseg = -(-header // segment_bytes)
            sizes = [segment_bytes] * (nseg - 1) + [
                header - segment_bytes * (nseg - 1)
            ]
            for s in sizes:
                yield from _bcast_once(ctx, PayloadStub(s, "segment"), root)
            return PayloadStub(header, "bcast")
        # small or non-stub payload: fall through to one-shot
        result = yield from _bcast_once(ctx, value, root)
        return result
    result = yield from _bcast_once(ctx, value, root)
    return result


def _fast_p2p(ctx: RankCtx) -> bool:
    """True when the frame-skipping :meth:`RankCtx.post` /
    :meth:`RankCtx.recv_cmd` helpers are observationally identical to
    :meth:`RankCtx.send` / :meth:`RankCtx.recv`: no default recv timeout
    to wrap and no p2p trace spans to record.  The tree collectives move
    one message per rank per level, so the saved generator frames are
    the bulk of their simulation cost."""
    comm = ctx.comm
    return comm.recv_timeout is None and not (
        comm.trace_p2p and comm.tracer is not None
    )


def _bcast_once(ctx: RankCtx, value: Any, root: int) -> Generator:
    """Single-shot binomial-tree broadcast."""
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return value
    fast = _fast_p2p(ctx)
    rel = (rank - root) % size
    mask = 1
    while mask < size:
        if rel & mask:
            src = (rel - mask + root) % size
            if fast:
                msg = yield ctx.recv_cmd(src, tag)
            else:
                msg = yield from ctx.recv(source=src, tag=tag)
            value = msg.payload
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < size:
            dst = (rel + mask + root) % size
            if fast:
                inj = ctx.post(dst, value, tag=tag)
                if inj > 0:
                    yield inj
            else:
                yield from ctx.send(dst, value, tag=tag)
        mask >>= 1
    return value


def serial_bcast(ctx: RankCtx, value: Any = None, root: int = 0) -> Generator:
    """Root sends to every rank one at a time.

    This is what a hand-rolled socket layer does (the paper's *before*
    state); cost is O(P) at the root instead of O(log P) — the COMM
    ablation benchmark contrasts the two.
    """
    _record(ctx, "serial_bcast")
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return value
    if rank == root:
        for dst in range(size):
            if dst != root:
                yield from ctx.send(dst, value, tag=tag)
        return value
    msg = yield from ctx.recv(source=root, tag=tag)
    return msg.payload


def reduce(
    ctx: RankCtx,
    value: Any,
    op: ReduceOp = SUM,
    root: int = 0,
    segment_bytes: int | None = None,
) -> Generator:
    """Binomial-tree reduction to ``root``; other ranks return ``None``.

    The operator must be associative and commutative (tree order is not
    rank order — see :func:`ordered_reduce` for bitwise-reproducible
    float sums).  ``segment_bytes`` pipelines stub payloads exactly as in
    :func:`bcast`.
    """
    from repro.vmpi.costmodel import PayloadStub

    _record(ctx, "reduce")
    if (
        segment_bytes is not None
        and segment_bytes > 0
        and isinstance(value, PayloadStub)
        and value.nbytes > segment_bytes
    ):
        total = value.nbytes
        nseg = -(-total // segment_bytes)
        sizes = [segment_bytes] * (nseg - 1) + [total - segment_bytes * (nseg - 1)]
        out = None
        for s in sizes:
            out = yield from _reduce_once(ctx, PayloadStub(s, "segment"), op, root)
        if ctx.rank == root:
            return PayloadStub(total, "reduced")
        return None
    result = yield from _reduce_once(ctx, value, op, root)
    return result


def _reduce_once(
    ctx: RankCtx, value: Any, op: ReduceOp = SUM, root: int = 0
) -> Generator:
    """Single-shot binomial-tree reduction."""
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return value
    fast = _fast_p2p(ctx)
    rel = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if rel & mask == 0:
            src_rel = rel | mask
            if src_rel < size:
                src = (src_rel + root) % size
                if fast:
                    msg = yield ctx.recv_cmd(src, tag)
                else:
                    msg = yield from ctx.recv(source=src, tag=tag)
                acc = op(acc, msg.payload)
        else:
            dst = ((rel & ~mask) + root) % size
            if fast:
                inj = ctx.post(dst, acc, tag=tag)
                if inj > 0:
                    yield inj
                return None
            yield from ctx.send(dst, acc, tag=tag)
            return None
        mask <<= 1
    return acc if rank == root else None


def ordered_reduce(
    ctx: RankCtx, value: Any, op: ReduceOp = SUM, root: int = 0
) -> Generator:
    """Gather-then-fold reduction: root combines contributions in rank
    order, so float sums are bitwise identical to a serial loop over
    ranks.  Used by parity experiments; costs O(P) messages at the root.
    """
    _record(ctx, "ordered_reduce")
    contributions = yield from gather(ctx, value, root=root)
    if ctx.rank != root:
        return None
    acc = contributions[0]
    for c in contributions[1:]:
        acc = op(acc, c)
    return acc


def allreduce(ctx: RankCtx, value: Any, op: ReduceOp = SUM) -> Generator:
    """Recursive-doubling allreduce (MPICH fold-in for non-power-of-2)."""
    _record(ctx, "allreduce")
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return value
    pof2 = 1 << (size.bit_length() - 1)
    if pof2 == size:
        rem = 0
    else:
        rem = size - pof2
    acc = value
    # Fold the surplus ranks into the power-of-two core.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from ctx.send(rank + 1, acc, tag=tag)
            newrank = -1
        else:
            msg = yield from ctx.recv(source=rank - 1, tag=tag)
            acc = op(msg.payload, acc)
            newrank = rank // 2
    else:
        newrank = rank - rem
    # Recursive doubling among the core.
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            )
            msg = yield from ctx.sendrecv(
                partner, acc, source=partner, tag=tag + 1
            )
            acc = op(acc, msg.payload)
            mask <<= 1
    # Unfold: push results back to the surplus ranks.
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from ctx.send(rank - 1, acc, tag=tag + 2)
        else:
            msg = yield from ctx.recv(source=rank + 1, tag=tag + 2)
            acc = msg.payload
    return acc


def gather(ctx: RankCtx, value: Any, root: int = 0) -> Generator:
    """Binomial-tree gather; root returns the rank-ordered list, others None."""
    _record(ctx, "gather")
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return [value]
    rel = (rank - root) % size
    # Each subtree accumulates {relrank: value}; dicts merge up the tree.
    acc: dict[int, Any] = {rel: value}
    mask = 1
    while mask < size:
        if rel & mask == 0:
            src_rel = rel | mask
            if src_rel < size:
                src = (src_rel + root) % size
                msg = yield from ctx.recv(source=src, tag=tag)
                acc.update(msg.payload)
        else:
            dst = ((rel & ~mask) + root) % size
            yield from ctx.send(dst, acc, tag=tag)
            return None
        mask <<= 1
    if rank != root:
        return None
    return [acc[(r - root) % size] for r in _rank_order(size, root)]


def _rank_order(size: int, root: int) -> list[int]:
    """Absolute ranks in gather output order (0..size-1)."""
    return list(range(size))


def scatter(ctx: RankCtx, values: list[Any] | None, root: int = 0) -> Generator:
    """Binomial-tree scatter of ``values[r]`` to rank ``r``.

    Only the root's ``values`` list is read; it must have ``size`` items.
    """
    _record(ctx, "scatter")
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        if values is None or len(values) != 1:
            raise ValueError("scatter root needs exactly `size` values")
        return values[0]
    rel = (rank - root) % size
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError(
                f"scatter root needs exactly {size} values, got "
                f"{None if values is None else len(values)}"
            )
        bundle = {(r - root) % size: v for r, v in enumerate(values)}
    else:
        bundle = None
    mask = 1
    while mask < size:
        if rel & mask:
            src = (rel - mask + root) % size
            msg = yield from ctx.recv(source=src, tag=tag)
            bundle = msg.payload
            break
        mask <<= 1
    mask >>= 1
    assert bundle is not None
    while mask > 0:
        if rel + mask < size:
            dst = (rel + mask + root) % size
            lo = rel + mask
            sub = {k: v for k, v in bundle.items() if k >= lo}
            bundle = {k: v for k, v in bundle.items() if k < lo}
            yield from ctx.send(dst, sub, tag=tag)
        mask >>= 1
    return bundle[rel]


def allgather(ctx: RankCtx, value: Any) -> Generator:
    """Gather to rank 0 then broadcast the list (simple, log-depth x2)."""
    _record(ctx, "allgather")
    gathered = yield from gather(ctx, value, root=0)
    result = yield from bcast(ctx, gathered, root=0)
    return result


def barrier(ctx: RankCtx) -> Generator:
    """Synchronize all ranks (zero-byte allreduce)."""
    _record(ctx, "barrier")
    yield from allreduce(ctx, 0, SUM)
    # A zero-length timeout keeps single-rank barriers well-formed
    # (every collective must yield at least once to be a generator).
    yield Timeout(0.0)
    return None
