"""Collective algorithms over virtual-MPI point-to-point.

These are the textbook algorithms BG/Q's optimized MPI library (on PAMI)
uses for medium-size messages: binomial-tree broadcast and reduce,
recursive-doubling allreduce (with the MPICH fold-in for non-power-of-two
communicators), tree gather/scatter.  Because they execute as real
message exchanges on the DES, their cost *emerges* from the network model
— log(P) depth, link contention on the torus, and so on — and the paper's
"sockets -> MPI_Bcast" upgrade (Section V-B) can be ablated by swapping
:func:`bcast` for :func:`serial_bcast`.

All collectives must be invoked by *every* rank of the communicator in
the same order (SPMD discipline).  A per-rank collective sequence number
is baked into the message tags, so a rank that skips a collective causes
a clean :class:`~repro.sim.engine.DeadlockError` instead of silent payload
cross-talk.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.sim.engine import Timeout
from repro.vmpi.comm import RankCtx
from repro.vmpi.ops import SUM, CONCAT, ReduceOp

__all__ = [
    "bcast",
    "binomial_levels",
    "serial_bcast",
    "reduce",
    "allreduce",
    "ring_allreduce",
    "rabenseifner_allreduce",
    "reduce_scatter",
    "torus_bcast",
    "torus_allreduce",
    "ordered_reduce",
    "gather",
    "scatter",
    "allgather",
    "barrier",
]

_COLL_TAG_BASE = 1_000_000  # repro: noqa(VMPI004) the band this rule reserves
_COLL_TAG_STRIDE = 8


def _next_tag(ctx: RankCtx) -> int:
    seq = ctx._coll_seq
    ctx._coll_seq = seq + 1
    return _COLL_TAG_BASE + seq * _COLL_TAG_STRIDE


def _coll_begin(ctx: RankCtx) -> tuple[Any, float]:
    """``(stats, t0)`` for per-collective duration accounting.

    ``stats`` is the communicator's
    :class:`~repro.obs.hooks.CollectiveStats` (or None when no registry
    is attached); the engine clock is only read when someone is
    listening, so un-instrumented runs pay one attribute check per
    collective and nothing else."""
    stats = ctx.comm.coll_stats
    return stats, (ctx.comm.engine._now if stats is not None else 0.0)


def _coll_end(ctx: RankCtx, stats: Any, op: str, algo: str, t0: float) -> None:
    """Append ``(op, algo, simulated duration)`` to the stats log.

    Append-only on the hot path — folding into counters/histograms
    happens lazily at scrape time, and nothing here touches the engine,
    so attaching observability cannot perturb virtual results."""
    if stats is not None:
        stats.log.append((op, algo, ctx.comm.engine._now - t0))


def _record(ctx: RankCtx, operation: str) -> None:
    """Ledger hook: note that this rank entered a public collective.

    Recording happens *before* any message traffic, so a schedule
    divergence (rank 0 in ``bcast`` while rank 1 is in ``barrier``) is
    caught by the communicator's
    :class:`~repro.analysis.runtime.CollectiveOrderChecker` the moment
    the second rank arrives — long before the mismatch could drain the
    event queue into an opaque deadlock.  Nested collectives (``barrier``
    -> ``allreduce``) record on every rank identically, so composition
    stays divergence-free.
    """
    checker = ctx.comm.collective_checker
    if checker is not None:
        checker.record(ctx.rank, operation)


_LEVELS_CACHE: dict[int, list[tuple[int, np.ndarray, np.ndarray]]] = {}


def binomial_levels(size: int) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """Edge schedule of the root-0 binomial tree over ``size`` ranks.

    Returns ``[(mask, leaves, parents), ...]`` in ascending ``mask``
    order, where at level ``mask`` the edges connect ``leaves[i]``
    (ranks whose lowest set bit is ``mask``) with ``parents[i] =
    leaves[i] - mask``.  Ascending order is exactly the up-sweep of
    :func:`reduce`'s ``_reduce_once`` (each rank sends at the level of
    its lowest set bit); the reversed list is the down-sweep of
    :func:`bcast`'s ``_bcast_once`` (each parent sends to its children
    in descending-mask order).  The vectorized SPMD executor
    (`repro.dist.vectorized`) replays whole levels as array operations
    against this schedule instead of stepping ``size`` generators.

    ``size`` must be a power of two — the vector fast path only claims
    eligibility for power-of-two communicators, where every tree level
    is full and the scalar algorithms take no remainder branches.
    """
    levels = _LEVELS_CACHE.get(size)
    if levels is None:
        if size < 1 or size & (size - 1):
            raise ValueError(f"binomial_levels requires a power of two, got {size}")
        levels = []
        mask = 1
        while mask < size:
            leaves = np.arange(mask, size, 2 * mask, dtype=np.int64)
            levels.append((mask, leaves, leaves - mask))
            mask <<= 1
        _LEVELS_CACHE[size] = levels
    return levels


def bcast(
    ctx: RankCtx,
    value: Any = None,
    root: int = 0,
    segment_bytes: int | None = None,
    algo: Any = None,
) -> Generator:
    """Broadcast; returns the root's value on every rank.

    ``algo`` selects the schedule: ``None``/``"binomial"`` (the default
    binomial tree, unchanged semantics), ``"serial"`` (root sends to each
    rank in turn), ``"torus"`` (dimension-pipelined over the partition
    grid), or ``"auto"`` (the communicator's
    :class:`~repro.vmpi.algoselect.CollectivePolicy` picks per message
    size — a tiny header broadcast first ships the root's payload size so
    every rank makes the same choice).

    ``segment_bytes`` enables large-message pipelining for
    :class:`~repro.vmpi.costmodel.PayloadStub` payloads on the binomial
    path: the stub is split into segments broadcast back-to-back, and
    because senders block only for injection the segments stream down the
    tree concurrently — the DES analogue of MPI's pipelined/van-de-Geijn
    broadcast, without which tree depth would over-charge multi-megabyte
    weight syncs.
    """
    _record(ctx, "bcast")
    stats, t0 = _coll_begin(ctx)
    name = "binomial" if algo is None else str(algo)
    if name == "auto":
        policy = _require_policy(ctx)
        header = ctx.comm.sizer(value) if ctx.rank == root else None
        header = yield from _bcast_once(ctx, header, root)
        name = str(policy.bcast_choice(ctx.size, header)[0])
    if name == "binomial":
        result = yield from _binomial_bcast(ctx, value, root, segment_bytes)
    elif name == "segmented":
        result = yield from _binomial_bcast(
            ctx, value, root, segment_bytes if segment_bytes else 1 << 20
        )
    elif name == "serial":
        result = yield from _serial_bcast_impl(ctx, value, root)
    elif name == "torus":
        result = yield from _torus_bcast_impl(ctx, value, root, _resolve_grid(ctx, None))
    else:
        raise ValueError(f"unknown bcast algo {name!r}")
    _coll_end(ctx, stats, "bcast", name, t0)
    return result


def _require_policy(ctx: RankCtx) -> Any:
    policy = ctx.comm.coll_policy
    if policy is None:
        raise ValueError(
            'algo="auto" needs a CollectivePolicy attached to the '
            "communicator (VComm(..., coll_policy=...))"
        )
    return policy


def _binomial_bcast(
    ctx: RankCtx, value: Any, root: int, segment_bytes: int | None
) -> Generator:
    """Binomial-tree broadcast, optionally segment-pipelined."""
    from repro.vmpi.costmodel import PayloadStub

    if segment_bytes is not None and segment_bytes > 0:
        # Every rank must agree on the segment count, which depends on the
        # root's payload size — ship it in a tiny header bcast first.
        nbytes = value.nbytes if isinstance(value, PayloadStub) else None
        header = yield from _bcast_once(ctx, nbytes, root)
        if header is not None and header > segment_bytes:
            nseg = -(-header // segment_bytes)
            sizes = [segment_bytes] * (nseg - 1) + [
                header - segment_bytes * (nseg - 1)
            ]
            for s in sizes:
                yield from _bcast_once(ctx, PayloadStub(s, "segment"), root)
            return PayloadStub(header, "bcast")
        # small or non-stub payload: fall through to one-shot
        result = yield from _bcast_once(ctx, value, root)
        return result
    result = yield from _bcast_once(ctx, value, root)
    return result


def _fast_p2p(ctx: RankCtx) -> bool:
    """True when the frame-skipping :meth:`RankCtx.post` /
    :meth:`RankCtx.recv_cmd` helpers are observationally identical to
    :meth:`RankCtx.send` / :meth:`RankCtx.recv`: no default recv timeout
    to wrap and no p2p trace spans to record.  The tree collectives move
    one message per rank per level, so the saved generator frames are
    the bulk of their simulation cost."""
    comm = ctx.comm
    return comm.recv_timeout is None and not (
        comm.trace_p2p and comm.tracer is not None
    )


def _bcast_once(ctx: RankCtx, value: Any, root: int) -> Generator:
    """Single-shot binomial-tree broadcast."""
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return value
    fast = _fast_p2p(ctx)
    rel = (rank - root) % size
    mask = 1
    while mask < size:
        if rel & mask:
            src = (rel - mask + root) % size
            if fast:
                msg = yield ctx.recv_cmd(src, tag)
            else:
                msg = yield from ctx.recv(source=src, tag=tag)
            value = msg.payload
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < size:
            dst = (rel + mask + root) % size
            if fast:
                inj = ctx.post(dst, value, tag=tag)
                if inj > 0:
                    yield inj
            else:
                yield from ctx.send(dst, value, tag=tag)
        mask >>= 1
    return value


def serial_bcast(ctx: RankCtx, value: Any = None, root: int = 0) -> Generator:
    """Root sends to every rank one at a time.

    This is what a hand-rolled socket layer does (the paper's *before*
    state); cost is O(P) at the root instead of O(log P) — the COMM
    ablation benchmark contrasts the two.
    """
    _record(ctx, "serial_bcast")
    stats, t0 = _coll_begin(ctx)
    result = yield from _serial_bcast_impl(ctx, value, root)
    _coll_end(ctx, stats, "bcast", "serial", t0)
    return result


def _serial_bcast_impl(ctx: RankCtx, value: Any, root: int) -> Generator:
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return value
    if rank == root:
        for dst in range(size):
            if dst != root:
                yield from ctx.send(dst, value, tag=tag)
        return value
    msg = yield from ctx.recv(source=root, tag=tag)
    return msg.payload


def reduce(
    ctx: RankCtx,
    value: Any,
    op: ReduceOp = SUM,
    root: int = 0,
    segment_bytes: int | None = None,
    algo: Any = None,
) -> Generator:
    """Reduction to ``root``; other ranks return ``None``.

    The operator must be associative and commutative (tree order is not
    rank order — see :func:`ordered_reduce` for bitwise-reproducible
    float sums).  ``segment_bytes`` pipelines stub payloads exactly as in
    :func:`bcast` on the binomial path.

    ``algo``: ``None``/``"binomial"`` is the default tree;
    ``"ring"``/``"rabenseifner"``/``"torus"`` run the corresponding
    allreduce schedule (which over-delivers the result to every rank but
    moves fewer bytes per link at large n) and return it only at the
    root; ``"auto"`` lets the communicator's policy choose.  All ranks
    hold equal-size payloads, so every rank computes the same choice
    with no extra traffic.
    """
    from repro.vmpi.costmodel import PayloadStub

    _record(ctx, "reduce")
    stats, t0 = _coll_begin(ctx)
    name = "binomial" if algo is None else str(algo)
    if name == "auto":
        policy = _require_policy(ctx)
        name = str(policy.reduce_choice(ctx.size, ctx.comm.sizer(value))[0])
    if name == "segmented":
        # executed analogue: the segment-pipelined binomial tree
        name = "binomial"
        if not segment_bytes:
            segment_bytes = 1 << 20
    if name != "binomial":
        if name == "ring":
            result = yield from _ring_allreduce_impl(ctx, value, op)
        elif name == "rabenseifner":
            result = yield from _rabenseifner_impl(ctx, value, op)
        elif name == "recursive_doubling":
            result = yield from _recursive_doubling_impl(ctx, value, op)
        elif name == "torus":
            result = yield from _torus_allreduce_impl(
                ctx, value, op, _resolve_grid(ctx, None)
            )
        else:
            raise ValueError(f"unknown reduce algo {name!r}")
        _coll_end(ctx, stats, "reduce", name, t0)
        return result if ctx.rank == root else None
    if (
        segment_bytes is not None
        and segment_bytes > 0
        and isinstance(value, PayloadStub)
        and value.nbytes > segment_bytes
    ):
        total = value.nbytes
        nseg = -(-total // segment_bytes)
        sizes = [segment_bytes] * (nseg - 1) + [total - segment_bytes * (nseg - 1)]
        out = None
        for s in sizes:
            out = yield from _reduce_once(ctx, PayloadStub(s, "segment"), op, root)
        _coll_end(ctx, stats, "reduce", "binomial", t0)
        if ctx.rank == root:
            return PayloadStub(total, "reduced")
        return None
    result = yield from _reduce_once(ctx, value, op, root)
    _coll_end(ctx, stats, "reduce", "binomial", t0)
    return result


def _reduce_once(
    ctx: RankCtx, value: Any, op: ReduceOp = SUM, root: int = 0
) -> Generator:
    """Single-shot binomial-tree reduction."""
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return value
    fast = _fast_p2p(ctx)
    rel = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if rel & mask == 0:
            src_rel = rel | mask
            if src_rel < size:
                src = (src_rel + root) % size
                if fast:
                    msg = yield ctx.recv_cmd(src, tag)
                else:
                    msg = yield from ctx.recv(source=src, tag=tag)
                acc = op(acc, msg.payload)
        else:
            dst = ((rel & ~mask) + root) % size
            if fast:
                inj = ctx.post(dst, acc, tag=tag)
                if inj > 0:
                    yield inj
                return None
            yield from ctx.send(dst, acc, tag=tag)
            return None
        mask <<= 1
    return acc if rank == root else None


def ordered_reduce(
    ctx: RankCtx, value: Any, op: ReduceOp = SUM, root: int = 0
) -> Generator:
    """Gather-then-fold reduction: root combines contributions in rank
    order, so float sums are bitwise identical to a serial loop over
    ranks.  Used by parity experiments; costs O(P) messages at the root.
    """
    _record(ctx, "ordered_reduce")
    contributions = yield from gather(ctx, value, root=root)
    if ctx.rank != root:
        return None
    acc = contributions[0]
    for c in contributions[1:]:
        acc = op(acc, c)
    return acc


def allreduce(ctx: RankCtx, value: Any, op: ReduceOp = SUM, algo: Any = None) -> Generator:
    """Allreduce; every rank returns the full reduction.

    ``algo``: ``None``/``"recursive_doubling"`` is the default MPICH
    schedule (unchanged semantics); ``"ring"``, ``"rabenseifner"`` and
    ``"torus"`` run the bandwidth-optimized schedules; ``"auto"``
    consults the communicator's
    :class:`~repro.vmpi.algoselect.CollectivePolicy` (payloads are
    equal-size on every rank, so the choice needs no extra traffic).
    """
    _record(ctx, "allreduce")
    stats, t0 = _coll_begin(ctx)
    name = "recursive_doubling" if algo is None else str(algo)
    if name == "auto":
        policy = _require_policy(ctx)
        name = str(policy.allreduce_choice(ctx.size, ctx.comm.sizer(value))[0])
    if name == "recursive_doubling":
        result = yield from _recursive_doubling_impl(ctx, value, op)
    elif name == "ring":
        result = yield from _ring_allreduce_impl(ctx, value, op)
    elif name == "rabenseifner":
        result = yield from _rabenseifner_impl(ctx, value, op)
    elif name == "torus":
        result = yield from _torus_allreduce_impl(ctx, value, op, _resolve_grid(ctx, None))
    else:
        raise ValueError(f"unknown allreduce algo {name!r}")
    _coll_end(ctx, stats, "allreduce", name, t0)
    return result


def _recursive_doubling_impl(ctx: RankCtx, value: Any, op: ReduceOp) -> Generator:
    """Recursive-doubling allreduce (MPICH fold-in for non-power-of-2)."""
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return value
    pof2 = 1 << (size.bit_length() - 1)
    if pof2 == size:
        rem = 0
    else:
        rem = size - pof2
    acc = value
    # Fold the surplus ranks into the power-of-two core.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from ctx.send(rank + 1, acc, tag=tag)
            newrank = -1
        else:
            msg = yield from ctx.recv(source=rank - 1, tag=tag)
            acc = op(msg.payload, acc)
            newrank = rank // 2
    else:
        newrank = rank - rem
    # Recursive doubling among the core.
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem else partner_new + rem
            )
            msg = yield from ctx.sendrecv(
                partner, acc, source=partner, tag=tag + 1
            )
            acc = op(acc, msg.payload)
            mask <<= 1
    # Unfold: push results back to the surplus ranks.
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from ctx.send(rank - 1, acc, tag=tag + 2)
        else:
            msg = yield from ctx.recv(source=rank + 1, tag=tag + 2)
            acc = msg.payload
    return acc


# --------------------------------------------------------------------------
# Chunked-payload helpers shared by the ring / reduce-scatter schedules.
#
# Ring schedules move *pieces* of the vector, so they need to split a
# payload into ``parts`` contiguous chunks and reassemble it.  Two payload
# families are supported: PayloadStub (byte-count bookkeeping; chunk byte
# sizes sum to the original exactly) and numpy arrays (real data; chunks
# are views of the flattened buffer).  Anything else raises TypeError —
# a scalar cannot be meaningfully scattered.
# --------------------------------------------------------------------------


def _chunk_sizes(total: int, parts: int) -> list[int]:
    """``parts`` contiguous chunk sizes summing to ``total`` exactly
    (first ``total % parts`` chunks get the extra unit)."""
    base, extra = divmod(total, parts)
    return [base + 1] * extra + [base] * (parts - extra)


def _split_chunks(value: Any, parts: int) -> tuple[list[Any], Any]:
    """Split ``value`` into ``parts`` chunks; returns (chunks, meta) where
    ``meta`` carries what :func:`_join_chunks` needs to reassemble."""
    from repro.vmpi.costmodel import PayloadStub

    if isinstance(value, PayloadStub):
        sizes = _chunk_sizes(value.nbytes, parts)
        return [PayloadStub(s, "chunk") for s in sizes], ("stub", value.nbytes)
    if isinstance(value, np.ndarray):
        flat = np.ascontiguousarray(value).reshape(-1)
        return np.array_split(flat, parts), ("array", value.shape)
    raise TypeError(
        f"ring schedules need a PayloadStub or numpy array payload, "
        f"got {type(value).__name__}"
    )


def _join_chunks(chunks: list[Any], meta: Any, op: ReduceOp) -> Any:
    from repro.vmpi.costmodel import PayloadStub

    kind, detail = meta
    if kind == "stub":
        # integer byte counts: addition is exact, order cannot matter
        total = sum(c.nbytes for c in chunks)  # repro: noqa(DET002)
        assert total == detail, f"chunk bytes {total} != payload bytes {detail}"
        return PayloadStub(total, f"{op.name}-reduced")
    return np.concatenate(chunks).reshape(detail)


def _ring_exchange(
    ctx: RankCtx, dst: int, src: int, payload: Any, tag: int, fast: bool
) -> Generator:
    """One ring step: send ``payload`` to ``dst`` while receiving from
    ``src`` — :meth:`RankCtx.sendrecv` semantics, with the frame-skipping
    post/recv_cmd fast path when it is observationally identical."""
    if not fast:
        msg = yield from ctx.sendrecv(dst, payload, source=src, tag=tag)
        return msg
    comm = ctx.comm
    t0 = comm.engine._now
    inj = ctx.post(dst, payload, tag=tag)
    msg = yield ctx.recv_cmd(src, tag)
    elapsed = comm.engine._now - t0
    if elapsed < inj:
        yield inj - elapsed + 0.0
    return msg


def _ring_reduce_scatter_steps(
    ctx: RankCtx,
    chunks: list[Any],
    op: ReduceOp,
    line: list[int],
    pos: int,
    tag: int,
    fast: bool,
) -> Generator:
    """The s-1 reduce-scatter steps of the ring schedule over ``line``
    (absolute ranks in ring order; this rank sits at ``line[pos]``).
    Afterwards ``chunks[pos]`` holds the fully reduced chunk ``pos``."""
    s = len(line)
    right, left = line[(pos + 1) % s], line[(pos - 1) % s]
    for step in range(s - 1):
        send_idx = (pos - 1 - step) % s
        recv_idx = (pos - 2 - step) % s
        msg = yield from _ring_exchange(ctx, right, left, chunks[send_idx], tag, fast)
        chunks[recv_idx] = op(chunks[recv_idx], msg.payload)


def _ring_allreduce_impl(
    ctx: RankCtx,
    value: Any,
    op: ReduceOp,
    line: list[int] | None = None,
    pos: int | None = None,
) -> Generator:
    """Ring allreduce: reduce-scatter then allgather around the ring.

    2(s-1) steps each moving ~n/s bytes — bandwidth-optimal, with cost
    linear in ring length (the latency the selection policy trades
    against the logarithmic trees).  ``line``/``pos`` restrict the
    schedule to a sub-ring (the torus per-dimension stages); by default
    the ring is the whole communicator in rank order.
    """
    if line is None:
        line = list(range(ctx.size))
        pos = ctx.rank
    assert pos is not None
    s = len(line)
    tag = _next_tag(ctx)
    if s == 1:
        return value
    chunks, meta = _split_chunks(value, s)
    fast = _fast_p2p(ctx)
    yield from _ring_reduce_scatter_steps(ctx, chunks, op, line, pos, tag, fast)
    right, left = line[(pos + 1) % s], line[(pos - 1) % s]
    for step in range(s - 1):
        send_idx = (pos - step) % s
        recv_idx = (pos - 1 - step) % s
        msg = yield from _ring_exchange(
            ctx, right, left, chunks[send_idx], tag + 1, fast
        )
        chunks[recv_idx] = msg.payload
    return _join_chunks(chunks, meta, op)


def ring_allreduce(ctx: RankCtx, value: Any, op: ReduceOp = SUM) -> Generator:
    """Ring allreduce over the whole communicator (see
    :func:`_ring_allreduce_impl`); every rank returns the full reduction."""
    _record(ctx, "ring_allreduce")
    stats, t0 = _coll_begin(ctx)
    result = yield from _ring_allreduce_impl(ctx, value, op)
    _coll_end(ctx, stats, "allreduce", "ring", t0)
    return result


def reduce_scatter(ctx: RankCtx, value: Any, op: ReduceOp = SUM) -> Generator:
    """Ring reduce-scatter: rank r returns the fully reduced chunk r.

    Chunk boundaries follow :func:`_chunk_sizes` — sizes are bit-exact
    (they sum to the payload's total), the contract the allgather half of
    ring allreduce and the bucketed-gradient accounting both rely on.
    """
    _record(ctx, "reduce_scatter")
    stats, t0 = _coll_begin(ctx)
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        _coll_end(ctx, stats, "reduce_scatter", "ring", t0)
        return value
    chunks, _meta = _split_chunks(value, size)
    fast = _fast_p2p(ctx)
    line = list(range(size))
    yield from _ring_reduce_scatter_steps(ctx, chunks, op, line, rank, tag, fast)
    _coll_end(ctx, stats, "reduce_scatter", "ring", t0)
    return chunks[rank]


def _rabenseifner_impl(ctx: RankCtx, value: Any, op: ReduceOp) -> Generator:
    """Rabenseifner allreduce: recursive-halving reduce-scatter then
    recursive-doubling allgather (MPICH fold-in for non-power-of-2).

    Ranks track the (lo, hi) slice of the vector they currently own;
    partners at each level hold identical ranges (they differ only in the
    current mask bit), so both compute the same split point and the
    exchanged halves tile the vector exactly.
    """
    from repro.vmpi.costmodel import PayloadStub

    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return value
    if isinstance(value, PayloadStub):
        total = value.nbytes
        stub_kind = f"{op.name}-reduced"
        buf = None

        def whole() -> Any:
            return PayloadStub(total, stub_kind)

        def extract(lo: int, hi: int) -> Any:
            return PayloadStub(hi - lo, "chunk")

        def fold(lo: int, hi: int, payload: Any) -> None:
            got = payload.nbytes
            if got != hi - lo:
                raise ValueError(
                    f"rabenseifner slice mismatch: got {got} bytes for "
                    f"range [{lo}, {hi})"
                )

        def emplace(lo: int, hi: int, payload: Any) -> None:
            fold(lo, hi, payload)

        def recv_len(payload: Any) -> int:
            return payload.nbytes

    elif isinstance(value, np.ndarray):
        buf = np.ascontiguousarray(value).reshape(-1).copy()
        total = buf.size

        def whole() -> Any:
            return buf.copy()

        def extract(lo: int, hi: int) -> Any:
            return buf[lo:hi].copy()

        def fold(lo: int, hi: int, payload: Any) -> None:
            buf[lo:hi] = op(buf[lo:hi], payload)

        def emplace(lo: int, hi: int, payload: Any) -> None:
            buf[lo:hi] = payload

        def recv_len(payload: Any) -> int:
            return int(payload.size)

    else:
        raise TypeError(
            f"rabenseifner needs a PayloadStub or numpy array payload, "
            f"got {type(value).__name__}"
        )

    pof2 = 1 << (size.bit_length() - 1)
    rem = size - pof2
    # Fold the surplus ranks into the power-of-two core.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from ctx.send(rank + 1, whole(), tag=tag)
            newrank = -1
        else:
            msg = yield from ctx.recv(source=rank - 1, tag=tag)
            fold(0, total, msg.payload)
            newrank = rank // 2
    else:
        newrank = rank - rem

    def real_rank(nr: int) -> int:
        return nr * 2 + 1 if nr < rem else nr + rem

    if newrank != -1:
        lo, hi = 0, total
        mask = 1
        while mask < pof2:
            partner = real_rank(newrank ^ mask)
            mid = lo + (hi - lo) // 2
            if newrank & mask:
                keep_lo, keep_hi, send_lo, send_hi = mid, hi, lo, mid
            else:
                keep_lo, keep_hi, send_lo, send_hi = lo, mid, mid, hi
            msg = yield from ctx.sendrecv(
                partner, extract(send_lo, send_hi), source=partner, tag=tag + 1
            )
            fold(keep_lo, keep_hi, msg.payload)
            lo, hi = keep_lo, keep_hi
            mask <<= 1
        # Recursive-doubling allgather, reversing the halving order: the
        # partner at each level owns the sibling half, adjacent to ours.
        mask = pof2 >> 1
        while mask > 0:
            partner = real_rank(newrank ^ mask)
            msg = yield from ctx.sendrecv(
                partner, extract(lo, hi), source=partner, tag=tag + 2
            )
            got = recv_len(msg.payload)
            if newrank & mask:
                emplace(lo - got, lo, msg.payload)
                lo -= got
            else:
                emplace(hi, hi + got, msg.payload)
                hi += got
            mask >>= 1
        assert (lo, hi) == (0, total)
    # Unfold: push results back to the surplus ranks.
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from ctx.send(rank - 1, whole(), tag=tag + 3)
        else:
            msg = yield from ctx.recv(source=rank + 1, tag=tag + 3)
            if buf is None:
                return msg.payload
            return np.asarray(msg.payload).reshape(np.shape(value))
    if buf is None:
        return whole()
    return buf.reshape(np.shape(value))


def rabenseifner_allreduce(ctx: RankCtx, value: Any, op: ReduceOp = SUM) -> Generator:
    """Rabenseifner allreduce (see :func:`_rabenseifner_impl`); every
    rank returns the full reduction."""
    _record(ctx, "rabenseifner_allreduce")
    stats, t0 = _coll_begin(ctx)
    result = yield from _rabenseifner_impl(ctx, value, op)
    _coll_end(ctx, stats, "allreduce", "rabenseifner", t0)
    return result


# --------------------------------------------------------------------------
# Torus-dimension-pipelined collectives.
#
# The communicator is viewed as a row-major grid (the partition's
# non-trivial torus dimensions with ranks-per-node innermost, matching
# the block rank→node mapping), and the collective runs one stage per
# grid dimension.  Neighbouring positions along a grid line are adjacent
# in the physical torus ring, so each stage pays single-ring latencies —
# the structural advantage the closed-form `torus_*_cost` formulas price.
# --------------------------------------------------------------------------


def _grid_prod(grid: tuple[int, ...]) -> int:
    n = 1
    for d in grid:
        n *= d
    return n


def _resolve_grid(ctx: RankCtx, grid: tuple[int, ...] | None) -> tuple[int, ...]:
    """The rank grid for torus-pipelined stages: explicit argument, else
    the communicator's policy grid, else the network model's topology."""
    if grid is None:
        policy = ctx.comm.coll_policy
        if policy is not None and getattr(policy, "grid", None) is not None:
            grid = policy.grid
        else:
            topo = getattr(ctx.comm.network, "collective_topology", None)
            if topo is not None:
                grid = topo()[0]
    if grid is None:
        raise ValueError(
            "torus collective needs a rank grid: pass grid=, attach a "
            "CollectivePolicy with one, or use a torus network model"
        )
    grid = tuple(int(d) for d in grid)
    if any(d < 1 for d in grid):
        raise ValueError(f"all grid dims must be >= 1: {grid}")
    if _grid_prod(grid) != ctx.size:
        raise ValueError(
            f"grid {grid} covers {_grid_prod(grid)} ranks, "
            f"communicator has {ctx.size}"
        )
    return grid


def _grid_coords(rank: int, grid: tuple[int, ...]) -> tuple[int, ...]:
    out = []
    rem = rank
    for d in reversed(grid):
        out.append(rem % d)
        rem //= d
    return tuple(reversed(out))


def _grid_line(
    coords: tuple[int, ...], dim: int, grid: tuple[int, ...]
) -> list[int]:
    """Absolute ranks along grid dimension ``dim`` through ``coords``,
    indexed by position on that dimension."""
    line = []
    for i in range(grid[dim]):
        c = coords[:dim] + (i,) + coords[dim + 1 :]
        idx = 0
        for x, d in zip(c, grid):
            idx = idx * d + x
        line.append(idx)
    return line


def _line_bcast(
    ctx: RankCtx,
    value: Any,
    line: list[int],
    pos: int,
    root_pos: int,
    tag: int,
) -> Generator:
    """Binomial-tree broadcast along one grid line."""
    s = len(line)
    fast = _fast_p2p(ctx)
    rel = (pos - root_pos) % s
    mask = 1
    while mask < s:
        if rel & mask:
            src = line[(rel - mask + root_pos) % s]
            if fast:
                msg = yield ctx.recv_cmd(src, tag)
            else:
                msg = yield from ctx.recv(source=src, tag=tag)
            value = msg.payload
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < s:
            dst = line[(rel + mask + root_pos) % s]
            if fast:
                inj = ctx.post(dst, value, tag=tag)
                if inj > 0:
                    yield inj
            else:
                yield from ctx.send(dst, value, tag=tag)
        mask >>= 1
    return value


def _torus_bcast_impl(
    ctx: RankCtx, value: Any, root: int, grid: tuple[int, ...]
) -> Generator:
    """Dimension-ordered broadcast: stage d fans the value out along
    grid dimension d.

    Invariant: before stage d, the holders are exactly the ranks that
    match the root's coordinates on every dimension >= d.  Stage d's
    participants are the ranks matching the root on every dimension
    > d; each of their dim-d lines contains exactly one holder (the rank
    that additionally matches on dim d), which acts as that line's root.
    After the last stage every rank holds the value.
    """
    ndim = len(grid)
    coords = _grid_coords(ctx.rank, grid)
    root_coords = _grid_coords(root, grid)
    val = value if ctx.rank == root else None
    for d in range(ndim):
        # One tag block per stage on EVERY rank — non-participants must
        # stay tag-aligned with participants for later collectives.
        tag = _next_tag(ctx)
        if grid[d] == 1:
            continue
        if any(coords[j] != root_coords[j] for j in range(d + 1, ndim)):
            continue
        line = _grid_line(coords, d, grid)
        val = yield from _line_bcast(
            ctx, val, line, coords[d], root_coords[d], tag
        )
    return val


def torus_bcast(
    ctx: RankCtx,
    value: Any = None,
    root: int = 0,
    grid: tuple[int, ...] | None = None,
) -> Generator:
    """Torus-dimension-pipelined broadcast; returns the root's value on
    every rank.  ``grid`` defaults to the communicator's partition grid
    (see :func:`_resolve_grid`)."""
    _record(ctx, "torus_bcast")
    stats, t0 = _coll_begin(ctx)
    result = yield from _torus_bcast_impl(ctx, value, root, _resolve_grid(ctx, grid))
    _coll_end(ctx, stats, "bcast", "torus", t0)
    return result


def _torus_allreduce_impl(
    ctx: RankCtx, value: Any, op: ReduceOp, grid: tuple[int, ...]
) -> Generator:
    """Per-dimension ring allreduce: after stage d every rank holds the
    reduction over all ranks agreeing with it on dimensions > d, so after
    the last stage every rank holds the global reduction."""
    ndim = len(grid)
    coords = _grid_coords(ctx.rank, grid)
    acc = value
    for d in range(ndim):
        if grid[d] == 1:
            continue
        # Every rank participates in every stage (each sits on exactly
        # one dim-d line), and the ring impl allocates its own tag block,
        # so tag sequences stay aligned without a stage-level tag here.
        line = _grid_line(coords, d, grid)
        acc = yield from _ring_allreduce_impl(
            ctx, acc, op, line=line, pos=coords[d]
        )
    return acc


def torus_allreduce(
    ctx: RankCtx,
    value: Any,
    op: ReduceOp = SUM,
    grid: tuple[int, ...] | None = None,
) -> Generator:
    """Torus-dimension-pipelined allreduce; every rank returns the full
    reduction.  ``grid`` defaults to the communicator's partition grid."""
    _record(ctx, "torus_allreduce")
    stats, t0 = _coll_begin(ctx)
    result = yield from _torus_allreduce_impl(ctx, value, op, _resolve_grid(ctx, grid))
    _coll_end(ctx, stats, "allreduce", "torus", t0)
    return result


def gather(ctx: RankCtx, value: Any, root: int = 0) -> Generator:
    """Binomial-tree gather; root returns the rank-ordered list, others None."""
    _record(ctx, "gather")
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        return [value]
    rel = (rank - root) % size
    # Each subtree accumulates {relrank: value}; dicts merge up the tree.
    acc: dict[int, Any] = {rel: value}
    mask = 1
    while mask < size:
        if rel & mask == 0:
            src_rel = rel | mask
            if src_rel < size:
                src = (src_rel + root) % size
                msg = yield from ctx.recv(source=src, tag=tag)
                acc.update(msg.payload)
        else:
            dst = ((rel & ~mask) + root) % size
            yield from ctx.send(dst, acc, tag=tag)
            return None
        mask <<= 1
    if rank != root:
        return None
    return [acc[(r - root) % size] for r in _rank_order(size, root)]


def _rank_order(size: int, root: int) -> list[int]:
    """Absolute ranks in gather output order (0..size-1)."""
    return list(range(size))


def scatter(ctx: RankCtx, values: list[Any] | None, root: int = 0) -> Generator:
    """Binomial-tree scatter of ``values[r]`` to rank ``r``.

    Only the root's ``values`` list is read; it must have ``size`` items.
    """
    _record(ctx, "scatter")
    size, rank = ctx.size, ctx.rank
    tag = _next_tag(ctx)
    if size == 1:
        if values is None or len(values) != 1:
            raise ValueError("scatter root needs exactly `size` values")
        return values[0]
    rel = (rank - root) % size
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError(
                f"scatter root needs exactly {size} values, got "
                f"{None if values is None else len(values)}"
            )
        bundle = {(r - root) % size: v for r, v in enumerate(values)}
    else:
        bundle = None
    mask = 1
    while mask < size:
        if rel & mask:
            src = (rel - mask + root) % size
            msg = yield from ctx.recv(source=src, tag=tag)
            bundle = msg.payload
            break
        mask <<= 1
    mask >>= 1
    assert bundle is not None
    while mask > 0:
        if rel + mask < size:
            dst = (rel + mask + root) % size
            lo = rel + mask
            sub = {k: v for k, v in bundle.items() if k >= lo}
            bundle = {k: v for k, v in bundle.items() if k < lo}
            yield from ctx.send(dst, sub, tag=tag)
        mask >>= 1
    return bundle[rel]


def allgather(ctx: RankCtx, value: Any) -> Generator:
    """Gather to rank 0 then broadcast the list (simple, log-depth x2)."""
    _record(ctx, "allgather")
    gathered = yield from gather(ctx, value, root=0)
    result = yield from bcast(ctx, gathered, root=0)
    return result


def barrier(ctx: RankCtx) -> Generator:
    """Synchronize all ranks (zero-byte allreduce)."""
    _record(ctx, "barrier")
    yield from allreduce(ctx, 0, SUM)
    # A zero-length timeout keeps single-rank barriers well-formed
    # (every collective must yield at least once to be a generator).
    yield Timeout(0.0)
    return None
