"""Per-call collective algorithm selection.

MPI implementations ship several algorithms per collective because no
single one wins everywhere: logarithmic trees minimize latency (small
messages), ring/Rabenseifner schedules minimize bytes-on-the-wire (large
messages), and torus-dimension-pipelined variants exploit physical
adjacency on machines like BG/Q.  :class:`CollectivePolicy` encodes that
choice as an argmin over the closed-form costs in
:mod:`repro.vmpi.collcost`, parameterized by the network model's
``(alpha, bandwidth)`` and — when the model is torus-shaped — its
partition grid and per-hop latency.

The policy serves two callers:

* the executed collectives (:mod:`repro.vmpi.collectives`) when invoked
  with ``algo="auto"`` on a communicator carrying a policy;
* the trainer's large-message fast path, which charges the *selected*
  algorithm's closed-form cost instead of executing it.

Both consult the same tables, so the fast path and the executed path
agree on which algorithm a given ``(p, nbytes)`` runs.
"""

from __future__ import annotations

from enum import Enum
from math import ceil, log2

from repro.vmpi.collcost import (
    collective_params,
    rabenseifner_allreduce_cost,
    ring_allreduce_cost,
    torus_allreduce_cost,
    torus_bcast_cost,
)

__all__ = ["CollectiveAlgo", "CollectivePolicy"]


class CollectiveAlgo(str, Enum):
    """Named collective algorithms the engine can execute or cost."""

    BINOMIAL = "binomial"
    SEGMENTED = "segmented"
    """Segment-pipelined binomial tree — the executed analogue of the
    van de Geijn scatter+allgather broadcast, costed by its formula."""
    RECURSIVE_DOUBLING = "recursive_doubling"
    RING = "ring"
    RABENSEIFNER = "rabenseifner"
    TORUS = "torus"
    SERIAL = "serial"

    def __str__(self) -> str:  # "ring", not "CollectiveAlgo.RING"
        return self.value


def _prod(dims: tuple[int, ...]) -> int:
    n = 1
    for d in dims:
        n *= d
    return n


class CollectivePolicy:
    """Pick the cheapest algorithm per (op, communicator size, nbytes).

    Parameters mirror :func:`repro.vmpi.collcost.collective_params`:
    ``alpha`` (per-message latency, mean-hop-inclusive) and ``bandwidth``
    (effective bytes/second).  When ``grid`` is given (the partition's
    rank grid, innermost dimension fastest-varying, matching the block
    rank→node mapping), torus-pipelined candidates are costed with
    per-dimension latencies; a torus candidate is only eligible when the
    grid covers the communicator exactly (``prod(grid) == p``).

    Choices are memoized per (op, p, nbytes): a training run asks for the
    same handful of payload sizes thousands of times.
    """

    def __init__(
        self,
        alpha: float,
        bandwidth: float,
        grid: tuple[int, ...] | None = None,
        base_latency: float | None = None,
        hop_latency: float | None = None,
        gamma: float = 0.1,
    ) -> None:
        if alpha < 0 or bandwidth <= 0:
            raise ValueError(
                f"need alpha >= 0 and bandwidth > 0, got {alpha}, {bandwidth}"
            )
        if grid is not None and any(d < 1 for d in grid):
            raise ValueError(f"all grid dims must be >= 1: {grid}")
        self.alpha = float(alpha)
        self.bandwidth = float(bandwidth)
        self.grid = tuple(grid) if grid is not None else None
        # Per-dimension stage latency parameters; default to the flat
        # alpha when the model exposes no hop structure.
        self.base_latency = float(base_latency) if base_latency is not None else alpha
        self.hop_latency = float(hop_latency) if hop_latency is not None else 0.0
        self.gamma = float(gamma)
        self._memo: dict[tuple[str, int, int], tuple[CollectiveAlgo, float]] = {}

    @classmethod
    def from_network(cls, network: object, size: int | None = None) -> "CollectivePolicy":
        """Build a policy from any network model.

        ``(alpha, bandwidth)`` come from :func:`collective_params`; torus
        structure is taken from the model's ``collective_topology()``
        when present.  ``size`` (the communicator size) gates the grid: a
        topology whose rank grid does not cover the communicator is
        dropped rather than mis-costed.
        """
        alpha, bandwidth = collective_params(network)
        grid = base = hop = None
        topo = getattr(network, "collective_topology", None)
        if topo is not None:
            grid, base, hop = topo()
            if size is not None and _prod(grid) != size:
                grid = None
        return cls(alpha, bandwidth, grid=grid, base_latency=base, hop_latency=hop)

    # ------------------------------------------------------------- choices
    def _torus_grid(self, p: int) -> tuple[int, ...] | None:
        g = self.grid
        if g is not None and _prod(g) == p and any(d > 1 for d in g):
            return g
        return None

    def bcast_choice(self, p: int, nbytes: int) -> tuple[CollectiveAlgo, float]:
        """Cheapest broadcast algorithm and its closed-form cost."""
        key = ("bcast", p, nbytes)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if p < 1 or nbytes < 0:
            raise ValueError(f"bad collective args p={p}, nbytes={nbytes}")
        if p == 1 or nbytes == 0:
            choice = (CollectiveAlgo.BINOMIAL, 0.0)
            self._memo[key] = choice
            return choice
        depth = ceil(log2(p))
        wire = nbytes / self.bandwidth
        candidates = [
            (CollectiveAlgo.BINOMIAL, depth * (self.alpha + wire)),
            (
                CollectiveAlgo.SEGMENTED,
                2.0 * (depth * self.alpha + wire * (p - 1) / p),
            ),
        ]
        grid = self._torus_grid(p)
        if grid is not None:
            candidates.append(
                (
                    CollectiveAlgo.TORUS,
                    torus_bcast_cost(
                        grid, nbytes, self.base_latency, self.hop_latency, self.bandwidth
                    ),
                )
            )
        choice = min(candidates, key=lambda c: c[1])
        self._memo[key] = choice
        return choice

    def allreduce_choice(self, p: int, nbytes: int) -> tuple[CollectiveAlgo, float]:
        """Cheapest allreduce algorithm and its closed-form cost."""
        key = ("allreduce", p, nbytes)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if p < 1 or nbytes < 0:
            raise ValueError(f"bad collective args p={p}, nbytes={nbytes}")
        if p == 1 or nbytes == 0:
            choice = (CollectiveAlgo.RECURSIVE_DOUBLING, 0.0)
            self._memo[key] = choice
            return choice
        depth = ceil(log2(p))
        wire = nbytes / self.bandwidth
        candidates = [
            (
                CollectiveAlgo.RECURSIVE_DOUBLING,
                depth * (self.alpha + wire * (1.0 + self.gamma)),
            ),
            (
                CollectiveAlgo.RING,
                ring_allreduce_cost(p, nbytes, self.alpha, self.bandwidth, self.gamma),
            ),
            (
                CollectiveAlgo.RABENSEIFNER,
                rabenseifner_allreduce_cost(
                    p, nbytes, self.alpha, self.bandwidth, self.gamma
                ),
            ),
        ]
        grid = self._torus_grid(p)
        if grid is not None:
            candidates.append(
                (
                    CollectiveAlgo.TORUS,
                    torus_allreduce_cost(
                        grid,
                        nbytes,
                        self.base_latency,
                        self.hop_latency,
                        self.bandwidth,
                        self.gamma,
                    ),
                )
            )
        choice = min(candidates, key=lambda c: c[1])
        self._memo[key] = choice
        return choice

    def reduce_choice(self, p: int, nbytes: int) -> tuple[CollectiveAlgo, float]:
        """Cheapest rooted-reduce algorithm and its closed-form cost.

        Candidates: the binomial reduce tree, or any allreduce schedule
        (which over-delivers the result to every rank — at large n the
        reduce-scatter-based schedules still beat the tree because the
        tree moves the full vector at every level)."""
        key = ("reduce", p, nbytes)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if p < 1 or nbytes < 0:
            raise ValueError(f"bad collective args p={p}, nbytes={nbytes}")
        if p == 1 or nbytes == 0:
            choice = (CollectiveAlgo.BINOMIAL, 0.0)
            self._memo[key] = choice
            return choice
        depth = ceil(log2(p))
        wire = nbytes / self.bandwidth
        # gamma (reduction compute) scales wire terms only, never alpha:
        # at tiny n the tree then ties recursive doubling exactly and
        # wins as the first candidate — MPI's small-message preference.
        tree = depth * (self.alpha + wire * (1.0 + self.gamma))
        segmented = (
            2.0 * (depth * self.alpha + wire * (p - 1) / p * (1.0 + self.gamma))
        )
        choice = (CollectiveAlgo.BINOMIAL, tree)
        if segmented < choice[1]:
            choice = (CollectiveAlgo.SEGMENTED, segmented)
        algo, cost = self.allreduce_choice(p, nbytes)
        if cost < choice[1]:
            choice = (algo, cost)
        self._memo[key] = choice
        return choice

    def reduce_cost_fn(self, p: int):
        """``nbytes -> cost`` closure over :meth:`reduce_choice` at a
        fixed communicator size — the per-bucket pricing hook the
        bucketed-overlap model takes
        (:func:`repro.nn.parallel_sgd.exposed_comm_model`), shared by
        the scalar scheduler and the SPMD vector fast path so both
        price every bucket through the same memoized selection."""
        return lambda nbytes: self.reduce_choice(p, nbytes)[1]

    # --------------------------------------------------------------- report
    def crossover_table(
        self, p: int, sizes: tuple[int, ...]
    ) -> list[dict[str, object]]:
        """Selection decisions across message sizes — the data behind a
        Fig-4-style algorithm-crossover plot."""
        rows: list[dict[str, object]] = []
        for n in sizes:
            b_algo, b_cost = self.bcast_choice(p, n)
            a_algo, a_cost = self.allreduce_choice(p, n)
            r_algo, r_cost = self.reduce_choice(p, n)
            rows.append(
                {
                    "nbytes": n,
                    "bcast": {"algo": str(b_algo), "cost": b_cost},
                    "allreduce": {"algo": str(a_algo), "cost": a_cost},
                    "reduce": {"algo": str(r_algo), "cost": r_cost},
                }
            )
        return rows
