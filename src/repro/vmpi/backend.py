"""Convenience front-ends for running SPMD rank programs.

:func:`run_spmd` is the one-call entry point used by tests and the
experiment harness: build a communicator over a given network model, run
one program per rank on the DES, and return times, results, and traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Sequence

from repro.sim.trace import Tracer
from repro.vmpi.comm import RankCtx, VComm
from repro.vmpi.costmodel import NetworkModel, UniformNetwork

__all__ = ["SpmdResult", "run_spmd"]


@dataclass
class SpmdResult:
    """Outcome of one SPMD virtual-MPI run."""

    time: float
    """Virtual end-to-end time (seconds) — max over ranks."""

    values: list[Any]
    """Per-rank return values of the rank programs."""

    tracer: Tracer
    """Per-rank labelled timelines (communication/compute spans)."""

    comm: VComm = field(repr=False, default=None)  # type: ignore[assignment]
    """The communicator (message/byte counters live here)."""


def run_spmd(
    size: int,
    program: Callable[[RankCtx], Generator] | Sequence[Callable[[RankCtx], Generator]],
    network: NetworkModel | None = None,
    until: float | None = None,
) -> SpmdResult:
    """Run ``program`` on ``size`` virtual ranks and return the result.

    ``program`` is either one generator function (replicated SPMD-style)
    or a sequence of ``size`` distinct programs (e.g. master + workers).
    """
    tracer = Tracer()
    comm = VComm(size, network=network or UniformNetwork(), tracer=tracer)
    t, values = comm.run(program, until=until)
    return SpmdResult(time=t, values=values, tracer=tracer, comm=comm)
