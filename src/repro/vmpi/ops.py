"""Reduction operators for virtual-MPI collectives.

Operators must be associative; reductions are executed pairwise along
tree/ring schedules, so the operator sees real payloads (numpy arrays,
scalars) or :class:`~repro.vmpi.costmodel.PayloadStub` placeholders and
must handle both.  ``SUM``/``MAX``/``MIN`` cover everything the trainer
needs (gradient sums, loss sums, frame-count sums, max runtimes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.vmpi.costmodel import PayloadStub

__all__ = ["ReduceOp", "SUM", "MAX", "MIN", "CONCAT"]


@dataclass(frozen=True)
class ReduceOp:
    """Named associative binary operator over payloads."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        # Reducing stubs yields a stub of the same size: elementwise
        # reduction of equal-shaped buffers does not change the wire size.
        if isinstance(a, PayloadStub) or isinstance(b, PayloadStub):
            na = a.nbytes if isinstance(a, PayloadStub) else _size(a)
            nb = b.nbytes if isinstance(b, PayloadStub) else _size(b)
            if na != nb:
                raise ValueError(
                    f"reduction of mismatched sizes: {na} vs {nb} bytes"
                )
            return PayloadStub(na, kind=f"{self.name}-reduced")
        return self.fn(a, b)


def _size(x: Any) -> int:
    if isinstance(x, np.ndarray):
        return int(x.nbytes)
    return 8


def _sum(a: Any, b: Any) -> Any:
    if isinstance(a, tuple) and isinstance(b, tuple):
        if len(a) != len(b):
            raise ValueError(f"tuple length mismatch in SUM: {len(a)} vs {len(b)}")
        return tuple(_sum(x, y) for x, y in zip(a, b))
    return a + b


def _max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _concat(a: Any, b: Any) -> Any:
    la = a if isinstance(a, list) else [a]
    lb = b if isinstance(b, list) else [b]
    return la + lb


SUM = ReduceOp("sum", _sum)
MAX = ReduceOp("max", _max)
MIN = ReduceOp("min", _min)
CONCAT = ReduceOp("concat", _concat)
