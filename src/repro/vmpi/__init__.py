"""Virtual MPI: communicators, point-to-point, and collectives.

Two backends share the package:

* **DES backend** (:mod:`repro.vmpi.comm`, :mod:`repro.vmpi.collectives`)
  — generator rank programs on the discrete-event engine with a pluggable
  network cost model; scales to thousands of simulated ranks.
* **Thread backend** (:mod:`repro.vmpi.inprocess`) — blocking API on real
  OS threads for genuinely parallel small-scale runs.
"""

from repro.vmpi.backend import SpmdResult, run_spmd
from repro.vmpi.algoselect import CollectiveAlgo, CollectivePolicy
from repro.vmpi.collectives import (
    allgather,
    allreduce,
    barrier,
    bcast,
    gather,
    ordered_reduce,
    rabenseifner_allreduce,
    reduce,
    reduce_scatter,
    ring_allreduce,
    scatter,
    serial_bcast,
    torus_allreduce,
    torus_bcast,
)
from repro.analysis.runtime import CollectiveOrderChecker, CollectiveOrderError
from repro.vmpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    Mailbox,
    Message,
    RankCtx,
    RecvTimeoutError,
    VComm,
)
from repro.vmpi.costmodel import (
    NetworkModel,
    PayloadStub,
    UniformNetwork,
    ZeroCostNetwork,
    nbytes_of,
)
from repro.vmpi.inprocess import ThreadRankComm, WorkerFailure, run_threaded
from repro.vmpi.ops import CONCAT, MAX, MIN, SUM, ReduceOp

__all__ = [
    "SpmdResult",
    "run_spmd",
    "allgather",
    "allreduce",
    "barrier",
    "bcast",
    "gather",
    "ordered_reduce",
    "rabenseifner_allreduce",
    "reduce",
    "reduce_scatter",
    "ring_allreduce",
    "scatter",
    "serial_bcast",
    "torus_allreduce",
    "torus_bcast",
    "CollectiveAlgo",
    "CollectivePolicy",
    "ANY_SOURCE",
    "ANY_TAG",
    "CollectiveOrderChecker",
    "CollectiveOrderError",
    "Mailbox",
    "Message",
    "RankCtx",
    "RecvTimeoutError",
    "VComm",
    "NetworkModel",
    "PayloadStub",
    "UniformNetwork",
    "ZeroCostNetwork",
    "nbytes_of",
    "ThreadRankComm",
    "WorkerFailure",
    "run_threaded",
    "CONCAT",
    "MAX",
    "MIN",
    "SUM",
    "ReduceOp",
]
