"""Exact per-rank time attribution: every virtual second accounted for.

The paper's scaling argument (Fig. 4's compute-vs-communication
counter-flow as partitions grow) needs more than raw span dumps: it
needs each rank's ``finish_time`` split into *where the time went*.
This module folds a rank's span totals (:meth:`repro.sim.trace.Tracer.
totals`) into four categories —

* ``compute`` — modeled computation (``compute.*`` labels);
* ``comm``    — collective + point-to-point time, including the
  straggler wait that is *inside* a collective span (``coll.*`` /
  ``p2p.*`` labels);
* ``recovery`` — fault-policy recovery charges
  (``compute.master_restart``);
* ``wait``   — everything the rank's spans do not cover: idle time
  before its first span, gaps, and the tail between its own finish and
  the run's ``Engine.finish_time``.

The headline invariant (pinned by tests/test_obs_attrib.py) is
**exactness**: ``compute + comm + recovery + wait == finish_time``
*bitwise*, not approximately.  ``wait`` is defined as the residual and
closed to the ulp by :func:`exact_residual`, so nothing is ever lost to
float rounding — a tiny *negative* wait (a few ulps) is legal and means
the tracked categories alone already overshoot the finish time by
accumulated rounding.

Labels without a ``.`` separator (raw ``mpi_send``/``mpi_recv`` from
``trace_p2p`` runs, ``fault_slowdown`` degradation overlays) are
*excluded*: they overlap the structured phase spans on the same rank
and would double-count — the same rule :func:`repro.dist.timeline.
split_breakdown` applies.

Because the fold consumes per-rank label totals only — bit-identical
between the scalar scheduler and the vectorized SPMD path (DESIGN.md
§6e) — attribution is automatically bit-identical across both, which
tests/test_obs_attrib.py asserts directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = [
    "CATEGORIES",
    "PHASES",
    "RankAttribution",
    "RunAttribution",
    "attribute_rank",
    "attribute_run",
    "category_of",
    "exact_residual",
    "mean_label_totals",
    "phase_flow_rows",
    "phase_of",
    "phase_records",
    "worker_sample",
]

CATEGORIES = ("compute", "comm", "recovery", "wait")
"""Attribution categories, in the fold order of :attr:`RankAttribution.total`."""

PHASES = ("load", "sync", "gradient", "cg", "linesearch", "recovery", "other")
"""Protocol phases (Fig-4 granularity), in rendering order."""

_RECOVERY_FUNCTIONS = frozenset({"master_restart"})
"""Span functions charged to ``recovery`` regardless of label kind."""

# Kind prefixes mirror repro.dist.timeline's COMPUTE/COLL/P2P.  They are
# spelled out (and pinned equal by tests) rather than imported: importing
# repro.dist here would close the cycle obs -> dist -> nn -> util.logging
# -> obs.fmt -> obs.__init__.
_KIND_COMPUTE = "compute"
_KIND_COLL = "coll"
_KIND_P2P = "p2p"

_PHASE_OF_FUNCTION = {
    "load_data": "load",
    "sync_weights": "sync",
    "sync_weights_master": "sync",
    "gradient_loss": "gradient",
    "reduce_gradient": "gradient",
    "worker_curvature_product": "cg",
    "cg_bcast": "cg",
    "cg_reduce": "cg",
    "cg_minimize": "cg",
    "hf_master": "cg",
    "heldout_loss": "linesearch",
    "reduce_loss": "linesearch",
    "master_restart": "recovery",
}
"""Span function -> protocol phase; unknown functions land in ``other``
(e.g. the fault protocol's ``ft_collect`` dispatch/collect envelope)."""


def category_of(label: str) -> str | None:
    """Attribution category for a span label, or None if excluded.

    Undotted labels (per-message ``mpi_send``/``mpi_recv``, the
    ``fault_slowdown`` overlay) overlap structured phase spans and are
    excluded to avoid double counting.
    """
    if "." not in label:
        return None
    kind, function = label.split(".", 1)
    if function in _RECOVERY_FUNCTIONS:
        return "recovery"
    if kind == _KIND_COMPUTE:
        return "compute"
    if kind in (_KIND_COLL, _KIND_P2P):
        return "comm"
    return None


def phase_of(label: str) -> str | None:
    """Protocol phase for a span label (None for excluded labels)."""
    if "." not in label:
        return None
    _kind, function = label.split(".", 1)
    return _PHASE_OF_FUNCTION.get(function, "other")


def exact_residual(total: float, tracked: float) -> float:
    """The ``wait`` closing ``tracked + wait == total`` *bitwise*.

    Starts from the plain difference (exact by Sterbenz's lemma whenever
    ``tracked`` is within a factor of two of ``total``), then applies the
    classic error fix-up ``wait += total - (tracked + wait)``; if the
    correction underflows the fix-up, steps ``wait`` by ulps.  Raises
    :class:`ArithmeticError` only if no closing value exists (never
    observed for finite inputs; the bound is a safety net).
    """
    wait = total - tracked
    for _ in range(8):
        got = tracked + wait
        if got == total:
            return wait
        wait += total - got
    for _ in range(64):
        got = tracked + wait
        if got == total:
            return wait
        wait = math.nextafter(wait, math.inf if got < total else -math.inf)
    raise ArithmeticError(
        f"cannot close attribution: {tracked!r} + wait != {total!r}"
    )


@dataclass(frozen=True)
class RankAttribution:
    """One rank's exact split of the run's finish time."""

    rank: int
    finish_time: float
    compute: float
    comm: float
    recovery: float
    wait: float
    phases: tuple[tuple[str, float], ...]
    """Tracked seconds per protocol phase (phases present only), in
    :data:`PHASES` order; excludes ``wait`` (which belongs to no single
    phase)."""

    @property
    def total(self) -> float:
        """Category sum in the defining fold order — equals
        :attr:`finish_time` bitwise by construction."""
        return ((self.compute + self.comm) + self.recovery) + self.wait

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view (used by ``repro report --json``)."""
        return {
            "rank": self.rank,
            "finish_time": self.finish_time,
            "compute": self.compute,
            "comm": self.comm,
            "recovery": self.recovery,
            "wait": self.wait,
            "phases": dict(self.phases),
        }


@dataclass(frozen=True)
class RunAttribution:
    """Attribution for a set of ranks plus the run-level straggler."""

    finish_time: float
    ranks: tuple[RankAttribution, ...]
    straggler_rank: int
    """Rank whose own finish time set ``finish_time`` (lowest rank on
    ties; -1 when per-rank end times were unavailable)."""

    def rank(self, r: int) -> RankAttribution:
        """The attribution computed for rank ``r`` (KeyError if absent)."""
        for a in self.ranks:
            if a.rank == r:
                return a
        raise KeyError(f"rank {r} not in attribution set")


def attribute_rank(
    span_totals: dict[str, float], finish_time: float, rank: int = 0
) -> RankAttribution:
    """Fold one rank's label totals into an exact category split.

    Labels fold in sorted order — bit-deterministic regardless of the
    totals dict's (path-dependent) insertion order.
    """
    compute = comm = recovery = 0.0
    phase_acc: dict[str, float] = {}
    for lbl in sorted(span_totals):
        cat = category_of(lbl)
        if cat is None:
            continue
        secs = span_totals[lbl]
        if cat == "compute":
            compute += secs
        elif cat == "comm":
            comm += secs
        else:
            recovery += secs
        ph = phase_of(lbl)
        assert ph is not None  # category_of and phase_of exclude together
        phase_acc[ph] = phase_acc.get(ph, 0.0) + secs
    tracked = (compute + comm) + recovery
    wait = exact_residual(finish_time, tracked)
    phases = tuple((p, phase_acc[p]) for p in PHASES if p in phase_acc)
    return RankAttribution(
        rank=rank,
        finish_time=finish_time,
        compute=compute,
        comm=comm,
        recovery=recovery,
        wait=wait,
        phases=phases,
    )


def attribute_run(result: Any, ranks: Iterable[int] | None = None) -> RunAttribution:
    """Attribute a :class:`~repro.dist.simulated.SimRunResult`.

    ``ranks`` restricts the per-rank set (recommended at 10k+ ranks —
    e.g. ``[0, straggler] + worker_sample(p)``); default is every rank.
    """
    finish = result.finish_time
    tracer = result.tracer
    p = result.config.shape.ranks
    rank_ids = list(range(p)) if ranks is None else [int(r) for r in ranks]
    per = tuple(
        attribute_rank(tracer.totals(f"rank{r}"), finish, r) for r in rank_ids
    )
    ends = result.rank_end_times
    if ends:
        straggler = max(range(len(ends)), key=lambda r: (ends[r], -r))
    else:
        straggler = -1
    return RunAttribution(finish_time=finish, ranks=per, straggler_rank=straggler)


# --------------------------------------------------- counter-flow breakdown
def worker_sample(ranks: int, sample: int = 16) -> list[int]:
    """Evenly spaced worker-rank sample (mirrors ``mean_worker_breakdown``)."""
    import numpy as np

    n_workers = ranks - 1
    return [
        int(r) for r in np.linspace(1, ranks - 1, min(sample, n_workers)).astype(int)
    ]


def mean_label_totals(tracer: Any, rank_ids: list[int]) -> dict[str, float]:
    """Average label totals over ``rank_ids``, folding labels in sorted
    order and ranks in list order (bit-deterministic, path-independent)."""
    acc: dict[str, float] = {}
    n = len(rank_ids)
    for r in rank_ids:
        totals = tracer.totals(f"rank{r}")
        for lbl in sorted(totals):
            acc[lbl] = acc.get(lbl, 0.0) + totals[lbl] / n
    return acc


def _phase_kind_fold(totals: dict[str, float]) -> dict[tuple[str, str], float]:
    """Label totals -> seconds per (phase, category), sorted-label fold."""
    acc: dict[tuple[str, str], float] = {}
    for lbl in sorted(totals):
        cat = category_of(lbl)
        if cat is None:
            continue
        ph = phase_of(lbl)
        assert ph is not None
        acc[(ph, cat)] = acc.get((ph, cat), 0.0) + totals[lbl]
    return acc


def phase_flow_rows(
    tracer: Any, ranks: int, sample: int = 16
) -> list[dict[str, Any]]:
    """Fig-4-style counter-flow rows for one run.

    One row per present ``(role, phase, kind)``: the master's and the
    mean worker's tracked seconds, split compute vs comm (vs recovery)
    per protocol phase.  As partitions grow, per-phase ``compute``
    shrinks and ``comm`` grows — the counter-flow the figure stacks.
    """
    rows: list[dict[str, Any]] = []
    sources = (
        ("master", tracer.totals("rank0")),
        ("worker_mean", mean_label_totals(tracer, worker_sample(ranks, sample))),
    )
    for role, totals in sources:
        acc = _phase_kind_fold(totals)
        for phase in PHASES:
            for kind in ("compute", "comm", "recovery"):
                secs = acc.get((phase, kind))
                if secs is not None:
                    rows.append(
                        {"phase": phase, "role": role, "kind": kind, "seconds": secs}
                    )
    return rows


def phase_records(
    tracer: Any, ranks: int, spec: str, sample: int = 16
) -> list[dict[str, Any]]:
    """Counter-flow rows as ``train.phase_seconds`` gauge records.

    Registered as a snapshot-time collector by ``simulate_training``, so
    every ``--obs`` metrics dump carries the per-phase breakdown —
    ``repro obs diff`` then aligns and gates it across runs.
    """
    from repro.obs.metrics import gauge_record

    return [
        gauge_record(
            "train.phase_seconds",
            row["seconds"],
            shape=spec,
            phase=row["phase"],
            role=row["role"],
            kind=row["kind"],
        )
        for row in phase_flow_rows(tracer, ranks, sample)
    ]
