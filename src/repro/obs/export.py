"""Exporters: Chrome trace-event JSON and flat JSONL metrics dumps.

The Chrome trace format (the ``traceEvents`` JSON consumed by Perfetto
and ``chrome://tracing``) is the natural rendering of the simulator's
:class:`~repro.sim.trace.Tracer`: every recorded span becomes a complete
(``"ph": "X"``) event on one track per simulated rank, with virtual
seconds mapped to trace microseconds.  Load the file in Perfetto and the
per-function timeline behind Figures 2-5 is directly inspectable —
"where did rank 3071 spend its virtual time during CG iteration 12" is a
zoom, not a script.

Track layout: ``pid`` is the simulated rank (parsed from process names
like ``rank3071``; other process names get stable ids above the rank
band), ``tid`` 0.  Process-name metadata events label each track, and
``process_sort_index`` metadata pins the display order (phase track
first, then ranks ascending).  A synthetic ``phases`` track tops the
view with one named window per protocol phase (derived from the
master's span sequence) plus instant markers at each phase start — the
"zoom presets" for navigating big traces: click a window in Perfetto
and the viewport snaps to that phase.
"""

from __future__ import annotations

import json
import math
import os
import re
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "chrome_trace",
    "phase_windows",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "StreamingMetricsWriter",
]

_RANK_NAME = re.compile(r"^rank(\d+)$")

_VIRTUAL_US = 1e6
"""Virtual seconds -> trace ``ts`` microseconds (Chrome's native unit)."""

_PHASE_TRACK_PID = 1 << 21
"""Dedicated pid of the synthetic phase-window track (above both the
rank band and the non-rank fallback band)."""


def _pid_of(process: str, fallback: dict[str, int], next_pid: list[int]) -> int:
    m = _RANK_NAME.match(process)
    if m:
        return int(m.group(1))
    pid = fallback.get(process)
    if pid is None:
        pid = fallback[process] = next_pid[0]
        next_pid[0] += 1
    return pid


def phase_windows(tracer: Any) -> list[tuple[str, float, float]]:
    """Merge the master's span sequence into named phase time-windows.

    Consecutive rank-0 spans mapping to the same protocol phase
    (:func:`repro.obs.attrib.phase_of`) merge into one
    ``(phase, start, end)`` window — the zoom presets the Perfetto
    export renders as a dedicated track.
    """
    from repro.obs.attrib import phase_of

    master = sorted(
        (
            s
            for s in tracer.spans
            if s.process == "rank0" and "." in s.label
        ),
        key=lambda s: (s.start, s.end),
    )
    windows: list[tuple[str, float, float]] = []
    for s in master:
        ph = phase_of(s.label)
        if ph is None:
            continue
        if windows and windows[-1][0] == ph:
            prev = windows[-1]
            windows[-1] = (ph, prev[1], max(prev[2], s.end))
        else:
            windows.append((ph, s.start, s.end))
    return windows


def chrome_trace(
    tracer: Any,
    time_scale: float = _VIRTUAL_US,
    phase_track: bool = True,
) -> dict[str, Any]:
    """Build the ``traceEvents`` document for a tracer's spans.

    ``tracer`` is anything with a ``spans`` list of
    :class:`~repro.sim.trace.Span`-shaped records.  Spans are emitted in
    record order (deterministic for a deterministic simulation); each
    carries its label's dot-prefix (``compute`` / ``coll`` / ``p2p``) as
    the event category so Perfetto can filter by kind.

    ``phase_track`` adds the synthetic per-phase zoom-preset track
    (:func:`phase_windows`) plus ``process_sort_index`` metadata pinning
    it above the rank tracks.
    """
    events: list[dict[str, Any]] = []
    fallback_pids: dict[str, int] = {}
    next_pid = [1 << 20]  # above any plausible rank id
    seen_pids: dict[int, str] = {}
    for span in tracer.spans:
        pid = _pid_of(span.process, fallback_pids, next_pid)
        seen_pids.setdefault(pid, span.process)
        category = span.label.split(".", 1)[0] if "." in span.label else "span"
        events.append(
            {
                "name": span.label,
                "cat": category,
                "ph": "X",
                "ts": span.start * time_scale,
                "dur": (span.end - span.start) * time_scale,
                "pid": pid,
                "tid": 0,
            }
        )
    if phase_track:
        windows = phase_windows(tracer)
        if windows:
            seen_pids[_PHASE_TRACK_PID] = "phases"
            for ph, start, end in windows:
                events.append(
                    {
                        "name": f"phase:{ph}",
                        "cat": "phase",
                        "ph": "X",
                        "ts": start * time_scale,
                        "dur": (end - start) * time_scale,
                        "pid": _PHASE_TRACK_PID,
                        "tid": 0,
                    }
                )
                # named instant marker: a global flow line at the phase
                # boundary, visible at any zoom level
                events.append(
                    {
                        "name": f"begin:{ph}",
                        "cat": "phase",
                        "ph": "i",
                        "s": "g",
                        "ts": start * time_scale,
                        "pid": _PHASE_TRACK_PID,
                        "tid": 0,
                    }
                )
    meta: list[dict[str, Any]] = []
    for pid in sorted(seen_pids):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": seen_pids[pid]},
            }
        )
        # phase track sorts first; ranks keep ascending order below it
        sort_index = -1 if pid == _PHASE_TRACK_PID else pid
        meta.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": sort_index},
            }
        )
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "time_scale": time_scale},
    }


def write_chrome_trace(tracer: Any, path: str | Path) -> Path:
    """Write ``tracer``'s spans as Chrome trace-event JSON at ``path``."""
    out = Path(path)
    out.write_text(json.dumps(chrome_trace(tracer), sort_keys=True))
    return out


class StreamingMetricsWriter:
    """Incremental JSONL metrics sink: one record per line, flushed as
    written, nothing buffered for the run's lifetime.

    Long sweeps (the 262k-rank scaling recipe, the fault sweep) emit
    metric records continuously; building the whole dump in memory and
    writing at exit both bloats the peak footprint and loses everything
    on a crash.  The streaming writer makes each record durable the
    moment it is produced:

    >>> with StreamingMetricsWriter(path) as w:
    ...     w.write({"record": "run", "shape": spec})
    ...     w.write_snapshot(registry)

    Records serialize with sorted keys (stable diffs); numpy scalars
    degrade via their ``item()`` like the batch writer.  Non-finite
    floats serialize as the strings ``"NaN"`` / ``"Infinity"`` /
    ``"-Infinity"`` instead of Python's bare (invalid-JSON) literals —
    a diverged metric must not corrupt the dump — and every record is
    emitted with ``allow_nan=False`` so nothing non-finite can slip
    through unsanitized.  :meth:`write_snapshot` additionally fsyncs the
    file (best effort), making whole snapshots durable across a crash.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def write(self, record: dict[str, Any]) -> None:
        """Serialize one record, write it, and flush it to the OS."""
        self._fh.write(
            json.dumps(
                _sanitize(record), sort_keys=True, allow_nan=False,
                default=_default,
            )
            + "\n"
        )
        self._fh.flush()
        self.records_written += 1

    def write_snapshot(self, registry: MetricsRegistry) -> int:
        """Stream every record of a registry snapshot; returns the count.

        Ends with an ``fsync`` so the snapshot is durable on disk, not
        just in the OS page cache; filesystems without fsync support
        (pipes, some tmpfs mounts) degrade to the per-write flush.
        """
        n = 0
        for rec in registry.snapshot():
            self.write(rec)
            n += 1
        try:
            os.fsync(self._fh.fileno())
        except OSError:
            pass  # per-write flush already pushed the data to the OS
        return n

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "StreamingMetricsWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def write_metrics_jsonl(
    registry: MetricsRegistry,
    path: str | Path,
    extra_records: list[dict[str, Any]] | None = None,
) -> Path:
    """Dump a registry snapshot (plus caller records) as JSONL.

    ``extra_records`` are appended after the snapshot in caller order —
    run-level context (shape, seed, workload) that is not a metric.
    Implemented over :class:`StreamingMetricsWriter`, so each record
    hits the file as it serializes instead of accumulating in memory.
    """
    with StreamingMetricsWriter(path) as writer:
        writer.write_snapshot(registry)
        for rec in extra_records or ():
            writer.write(rec)
    return writer.path


def _sanitize(value: Any) -> Any:
    """Deep-copy ``value`` with non-finite floats as JSON-safe strings.

    Containers recurse; numpy scalars degrade through ``item()`` first
    so a ``np.float64("nan")`` sanitizes like the builtin.
    """
    item = getattr(value, "item", None)
    if callable(item) and not isinstance(value, (dict, list, tuple, str)):
        value = item()
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


def _default(obj: Any) -> Any:
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"record value {obj!r} is not JSON-serializable")
