"""Critical-path extraction over the DES's recorded dependency structure.

A synchronous training run's ``finish_time`` is set by one *chain* of
dependent work: the straggler entering each collective, the compute that
made it late, the p2p hop that fed that compute.  This module walks that
chain backward from the finish time and returns it as an ordered list of
:class:`PathStep` segments tiling ``[0, finish_time]`` exactly — "why
did this run take as long as it did", rank and phase named.

Two granularities, one result type:

* **span** (:func:`path_from_spans`) — the scalar scheduler records
  per-rank phase spans; the walk hops rank-to-rank.  At a collective
  span the dependency edge goes to the *straggler* — the rank with the
  latest entry into the same occurrence of that collective (occurrence
  counting aligns master/worker label variants, e.g.
  ``coll.sync_weights_master`` with ``coll.sync_weights``) — because a
  barrier's exit time is set by its last arrival.  At the fault
  protocol's ``p2p.ft_collect`` the edge goes to the latest other-rank
  span ending inside the collect window (the last reply the master
  waited for).  Compute/p2p spans continue on the same rank.
* **phase** (:func:`path_from_phase_log`) — the vectorized SPMD
  executor never materialises per-rank spans; it logs one
  ``(label, end, straggler_rank)`` edge per phase, and the path is the
  phase sequence with each segment charged to that phase's straggler.
  The fast path stays eligible: no extra per-rank work is done.

Invariants (pinned by tests/test_obs_attrib.py): steps are contiguous
(``steps[i].end == steps[i+1].start`` bitwise), start at 0.0, end at
``finish_time``, and are monotone in virtual time.  Intervals no span
covers appear explicitly as ``wait`` steps, so the path never loses
time.  The walk is pure post-processing — nothing here runs during the
simulation.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass
from typing import Any

from repro.obs.attrib import PHASES, category_of, phase_of

__all__ = [
    "PathStep",
    "CriticalPath",
    "critical_path",
    "path_from_phase_log",
    "path_from_spans",
]

WAIT = "wait"
"""Pseudo-label for path segments no recorded span covers."""

_RANK_NAME = re.compile(r"^rank(\d+)$")

_CANON_COLL = {"coll.sync_weights_master": "coll.sync_weights"}
"""Master-side collective labels aliased onto the worker-side label so
occurrence counting aligns the two ends of the same collective call."""


@dataclass(frozen=True)
class PathStep:
    """One segment of the critical path: ``rank`` was the chain's owner
    over ``[start, end]`` doing ``label``."""

    rank: int
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def category(self) -> str:
        """Attribution category of the step (``wait`` for gaps)."""
        return category_of(self.label) or WAIT

    @property
    def phase(self) -> str:
        """Protocol phase of the step (``wait`` for gaps)."""
        return phase_of(self.label) or WAIT


@dataclass(frozen=True)
class CriticalPath:
    """The longest dependency chain of one run, tiling ``[0, finish]``."""

    finish_time: float
    granularity: str
    """``"span"`` (scalar scheduler) or ``"phase"`` (vector fast path)."""
    steps: tuple[PathStep, ...]

    @property
    def total(self) -> float:
        """Span of the path — equals :attr:`finish_time` bitwise (the
        steps tile ``[0, finish_time]`` contiguously)."""
        if not self.steps:
            return 0.0
        return self.steps[-1].end - self.steps[0].start

    def by_category(self) -> dict[str, float]:
        """Path seconds per attribution category, folded in step order."""
        acc: dict[str, float] = {}
        for s in self.steps:
            c = s.category
            acc[c] = acc.get(c, 0.0) + s.duration
        return acc

    def by_phase(self) -> dict[str, float]:
        """Path seconds per protocol phase, folded in step order."""
        acc: dict[str, float] = {}
        for s in self.steps:
            p = s.phase
            acc[p] = acc.get(p, 0.0) + s.duration
        return acc

    def by_rank(self) -> dict[int, float]:
        """Path seconds per owning rank, folded in step order."""
        acc: dict[int, float] = {}
        for s in self.steps:
            acc[s.rank] = acc.get(s.rank, 0.0) + s.duration
        return acc

    @property
    def straggler_rank(self) -> int:
        """Rank owning the most path time (lowest rank on ties)."""
        by_rank = self.by_rank()
        if not by_rank:
            return -1
        return max(sorted(by_rank), key=lambda r: (by_rank[r], -r))

    @property
    def straggler_phase(self) -> str:
        """Phase owning the most path time (earliest in PHASES on ties)."""
        by_phase = self.by_phase()
        if not by_phase:
            return WAIT
        order = {p: i for i, p in enumerate(PHASES + (WAIT,))}
        return max(
            sorted(by_phase, key=lambda p: order.get(p, len(order))),
            key=lambda p: (by_phase[p], -order.get(p, len(order))),
        )

    def top_steps(self, n: int = 10) -> list[PathStep]:
        """The ``n`` longest steps, longest first (start-time tiebreak)."""
        return sorted(self.steps, key=lambda s: (-s.duration, s.start))[:n]

    def describe(self) -> str:
        """One-paragraph text summary for reports and the CLI."""
        cats = self.by_category()
        parts = ", ".join(
            f"{k}={cats[k]:.6g}s" for k in sorted(cats, key=cats.get, reverse=True)
        )
        return (
            f"critical path ({self.granularity} granularity): "
            f"{len(self.steps)} steps over {self.total:.6g}s; "
            f"straggler rank {self.straggler_rank}, "
            f"dominant phase {self.straggler_phase}; {parts}"
        )


def path_from_phase_log(
    phase_log: list[tuple[str, float, int]], finish_time: float
) -> CriticalPath:
    """Phase-granular path from the vector executor's dependency log.

    Each log entry names the phase's global end time and the rank whose
    clock set it; consecutive ends tile the run, so the path is the
    phase sequence charged to each phase's straggler.
    """
    steps: list[PathStep] = []
    prev = 0.0
    last_rank = 0
    for lbl, end, straggler in phase_log:
        if end > prev:
            steps.append(PathStep(straggler, lbl, prev, end))
            prev = end
            last_rank = straggler
    if prev < finish_time:
        steps.append(PathStep(last_rank, WAIT, prev, finish_time))
    return CriticalPath(
        finish_time=finish_time, granularity="phase", steps=tuple(steps)
    )


def path_from_spans(tracer: Any, finish_time: float) -> CriticalPath:
    """Span-granular backward walk over a tracer's per-rank spans.

    Only structured (dotted) labels on ``rank<N>`` processes
    participate; raw ``mpi_send``/``mpi_recv`` and fault overlays are
    skipped exactly as in attribution (they overlap phase spans).
    """
    rank_spans: dict[int, list[Any]] = {}
    for proc, spans in tracer.spans_by_process().items():
        m = _RANK_NAME.match(proc)
        if m is None:
            continue
        dotted = [s for s in spans if "." in s.label]
        if dotted:
            rank_spans[int(m.group(1))] = dotted
    if not rank_spans or finish_time <= 0.0:
        steps = (
            (PathStep(0, WAIT, 0.0, finish_time),) if finish_time > 0.0 else ()
        )
        return CriticalPath(
            finish_time=finish_time, granularity="span", steps=steps
        )

    starts: dict[int, list[float]] = {}
    occ_of: dict[int, list[int]] = {}
    coll_occurrences: dict[str, dict[int, list[Any]]] = {}
    for r, spans in rank_spans.items():
        starts[r] = [s.start for s in spans]
        counters: dict[str, int] = {}
        occs = []
        for s in spans:
            if s.label.startswith("coll."):
                canon = _CANON_COLL.get(s.label, s.label)
                k = counters.get(canon, 0)
                counters[canon] = k + 1
                occs.append(k)
                coll_occurrences.setdefault(canon, {}).setdefault(r, []).append(s)
            else:
                occs.append(-1)
        occ_of[r] = occs

    strag_cache: dict[tuple[str, int], tuple[float, int]] = {}

    def straggler_entry(canon: str, k: int) -> tuple[float, int]:
        hit = strag_cache.get((canon, k))
        if hit is None:
            best_t, best_r = -1.0, -1
            per_rank = coll_occurrences[canon]
            for rr in sorted(per_rank):
                lst = per_rank[rr]
                if k < len(lst) and lst[k].start > best_t:
                    best_t, best_r = lst[k].start, rr
            hit = strag_cache[(canon, k)] = (best_t, best_r)
        return hit

    # global (end, rank) index, built lazily for ft_collect cause hops
    ends_index: list[tuple[float, int]] | None = None
    ends_only: list[float] = []

    def cause_before(lo: float, hi: float, exclude: int) -> tuple[float, int] | None:
        nonlocal ends_index
        if ends_index is None:
            # zero-length spans are skipped: they cannot be a cause and
            # hopping to one would stall the walk at a fixed time
            ends_index = sorted(
                (s.end, rr)
                for rr, spans in rank_spans.items()
                for s in spans
                if s.end > s.start
            )
            ends_only.extend(e for e, _ in ends_index)
        j = bisect.bisect_right(ends_only, hi) - 1
        while j >= 0 and ends_index[j][0] > lo:
            if ends_index[j][1] != exclude:
                e = ends_index[j][0]
                lo_j = bisect.bisect_left(ends_only, e)
                cands = [
                    rr for ee, rr in ends_index[lo_j : j + 1] if rr != exclude
                ]
                return e, min(cands)
            j -= 1
        return None

    max_end_rank = max(
        rank_spans, key=lambda rr: (rank_spans[rr][-1].end, -rr)
    )
    t = finish_time
    r = max_end_rank
    steps_rev: list[PathStep] = []

    def emit(rank: int, lbl: str, lo: float, hi: float) -> None:
        if hi > lo:
            steps_rev.append(PathStep(rank, lbl, lo, hi))

    last_end = rank_spans[max_end_rank][-1].end
    if last_end < t:
        emit(r, WAIT, last_end, t)
        t = last_end

    guard = 2 * sum(len(rank_spans[rr]) for rr in sorted(rank_spans)) + 64
    while t > 0.0 and guard > 0:
        guard -= 1
        spans = rank_spans.get(r)
        i = bisect.bisect_left(starts[r], t) - 1 if spans else -1
        if i < 0:
            emit(r, WAIT, 0.0, t)
            t = 0.0
            break
        s = spans[i]
        if s.end < t:
            # idle gap on this rank: the rank resumed at t because some
            # other rank's work completed inside the gap (the message it
            # was blocked on) — hop to that cause and charge the gap to
            # wait; fall back to same-rank continuation if nothing else
            # ended in the window
            cause = cause_before(s.end, t, exclude=r)
            if cause is not None:
                emit(r, WAIT, cause[0], t)
                t, r = cause
            else:
                emit(r, WAIT, s.end, t)
                t = s.end
            continue
        if s.label.startswith("coll."):
            canon = _CANON_COLL.get(s.label, s.label)
            st_start, st_rank = straggler_entry(canon, occ_of[r][i])
            if st_rank >= 0 and st_start <= t and (st_start, st_rank) != (t, r):
                emit(r, s.label, st_start, t)
                t, r = st_start, st_rank
                continue
        elif s.label == "p2p.ft_collect":
            cause = cause_before(s.start, t, exclude=r)
            if cause is not None and cause[0] < t:
                emit(r, s.label, cause[0], t)
                t, r = cause
                continue
        emit(r, s.label, s.start, t)
        t = s.start
    if t > 0.0:
        # guard exhausted (degenerate span sets): close the tiling
        emit(r, WAIT, 0.0, t)
    steps_rev.reverse()
    return CriticalPath(
        finish_time=finish_time, granularity="span", steps=tuple(steps_rev)
    )


def critical_path(result: Any) -> CriticalPath:
    """Extract the critical path of a simulated run.

    Dispatches on how the run executed: the vector fast path leaves a
    phase log (phase granularity); the scalar scheduler leaves per-rank
    spans (span granularity).  Either way the result tiles
    ``[0, finish_time]`` exactly.
    """
    log = getattr(result, "phase_log", None)
    if log:
        return path_from_phase_log(log, result.finish_time)
    return path_from_spans(result.tracer, result.finish_time)
