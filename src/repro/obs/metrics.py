"""Metric instruments and the registry that owns them.

The registry is the single sink for everything the simulator, the
virtual-MPI layer, and the HF trainer want to report about themselves:

* :class:`Counter` — monotone event counts (``sim.events``,
  ``comm.messages``);
* :class:`Gauge` — last-value-plus-peak level readings (heap depth,
  outstanding messages);
* :class:`Histogram` — fixed-bucket distributions (message sizes);
  bucket bounds are frozen at creation so two runs always bin
  identically;
* :class:`Series` — short append-only value sequences indexed by
  occurrence order (per-CG-iteration residuals, per-outer-iteration
  lambda), the shape Figures 2-5-style analyses want.

Instruments carry **label dimensions** — ``rank=3``, ``phase="iter2"`` —
and the registry keys on ``(name, sorted labels)``.  Label cardinality
discipline (see DESIGN.md §7): label values must be drawn from sets
bounded by the run configuration (ranks, phases, outer iterations),
never from unbounded data (payload contents, virtual times).

Determinism: :meth:`MetricsRegistry.snapshot` emits records sorted by
``(metric name, canonical label encoding)`` regardless of creation
order, and every instrument folds values in arrival order — so a dump
from a deterministic simulation is byte-stable across runs.

Hot subsystems do not call instrument methods per event.  They keep
plain local counters and register a *collector* — a callable returning
finished records — which the registry invokes at snapshot time.  That is
what keeps instrumentation zero-cost when detached and near-free when
attached (the ``_fast_p2p`` gating pattern).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "counter_record",
    "gauge_record",
    "histogram_record",
    "series_record",
]

LabelValue = Any  # int | str in practice; anything json-serializable


def _canon_labels(labels: dict[str, LabelValue]) -> tuple[tuple[str, LabelValue], ...]:
    return tuple(sorted(labels.items()))


def _labels_dict(key: tuple[tuple[str, LabelValue], ...]) -> dict[str, LabelValue]:
    return dict(key)


# ------------------------------------------------------------- record shapes
def counter_record(name: str, value: int, **labels: LabelValue) -> dict[str, Any]:
    return {"metric": name, "type": "counter", "labels": labels, "value": value}


def gauge_record(
    name: str, value: float, peak: float | None = None, **labels: LabelValue
) -> dict[str, Any]:
    """One gauge record for a collector, with an optional peak reading."""
    rec = {"metric": name, "type": "gauge", "labels": labels, "value": value}
    if peak is not None:
        rec["peak"] = peak
    return rec


def histogram_record(
    name: str,
    bounds: Sequence[float],
    counts: Sequence[int],
    total: float,
    **labels: LabelValue,
) -> dict[str, Any]:
    return {
        "metric": name,
        "type": "histogram",
        "labels": labels,
        "bounds": list(bounds),
        "counts": list(counts),
        "count": sum(counts),
        "sum": total,
    }


def series_record(
    name: str, values: Sequence[float], **labels: LabelValue
) -> dict[str, Any]:
    return {"metric": name, "type": "series", "labels": labels, "values": list(values)}


# -------------------------------------------------------------- instruments
class Counter:
    """Monotone event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the running count."""
        if n < 0:
            raise ValueError(f"counter increments must be >= 0, got {n}")
        self.value += n

    def _record(self, name: str, labels: dict[str, LabelValue]) -> dict[str, Any]:
        return counter_record(name, self.value, **labels)


class Gauge:
    """Last-set level, remembering the peak ever set."""

    __slots__ = ("value", "peak")

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0

    def set(self, v: float) -> None:
        """Record the latest reading, tracking the peak as a side effect."""
        self.value = v
        if v > self.peak:
            self.peak = v

    def set_max(self, v: float) -> None:
        """Fold a candidate peak without disturbing the current value."""
        if v > self.peak:
            self.peak = v

    def _record(self, name: str, labels: dict[str, LabelValue]) -> dict[str, Any]:
        return gauge_record(name, self.value, peak=self.peak, **labels)


class Histogram:
    """Fixed-bucket histogram with *inclusive* upper bounds.

    ``bounds`` are strictly increasing finite upper edges; a value ``v``
    lands in the first bucket with ``v <= bound`` and values above the
    last bound fall into an implicit overflow bucket, so ``counts`` has
    ``len(bounds) + 1`` entries.  Bounds are frozen at construction —
    fixed buckets are what keep two runs (or two ranks) directly
    comparable and golden dumps stable.
    """

    __slots__ = ("bounds", "counts", "total")

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = list(bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bounds: list[float] = bounds
        self.counts: list[int] = [0] * (len(bounds) + 1)
        self.total = 0.0

    def observe(self, v: float) -> None:
        """Count ``v`` into its bucket and fold it into the sum."""
        self.counts[bisect_left(self.bounds, v)] += 1
        self.total += v

    @property
    def count(self) -> int:
        return sum(self.counts)

    def bucket_of(self, v: float) -> int:
        """Index of the bucket ``observe(v)`` would increment."""
        return bisect_left(self.bounds, v)

    def _record(self, name: str, labels: dict[str, LabelValue]) -> dict[str, Any]:
        return histogram_record(name, self.bounds, self.counts, self.total, **labels)


class Series:
    """Append-only value sequence (one entry per occurrence).

    This is the instrument for per-iteration trajectories — lambda per
    outer HF iteration, residual per CG iteration — where the *sequence*
    is the signal and aggregation would destroy it.  Length must stay
    bounded by run configuration (iteration counts), never by data
    volume; unbounded streams belong in the Chrome trace, not here.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def append(self, v: float) -> None:
        self.values.append(v)

    def extend(self, vs: Iterable[float]) -> None:
        self.values.extend(vs)

    def _record(self, name: str, labels: dict[str, LabelValue]) -> dict[str, Any]:
        return series_record(name, self.values, **labels)


_INSTRUMENTS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "series": Series,
}


# ----------------------------------------------------------------- registry
class MetricsRegistry:
    """Owns instruments keyed by ``(name, labels)`` plus snapshot collectors.

    One registry per run.  Attach it wherever the run wants eyes —
    ``Engine.attach_obs``, ``VComm(obs=...)``,
    ``HessianFreeOptimizer(obs=...)`` — and dump it once at the end with
    :meth:`snapshot` / :meth:`to_jsonl`.
    """

    def __init__(self) -> None:
        self._metrics: dict[
            tuple[str, tuple[tuple[str, LabelValue], ...]], tuple[str, Any]
        ] = {}
        self._collectors: list[Callable[[], list[dict[str, Any]]]] = []

    # ------------------------------------------------------------- creation
    def _get(self, kind: str, name: str, labels: dict[str, LabelValue], *args: Any):
        key = (name, _canon_labels(labels))
        hit = self._metrics.get(key)
        if hit is not None:
            have_kind, instrument = hit
            if have_kind != kind:
                raise ValueError(
                    f"metric {name!r} {labels!r} already registered as "
                    f"{have_kind}, requested {kind}"
                )
            return instrument
        instrument = _INSTRUMENTS[kind](*args)
        self._metrics[key] = (kind, instrument)
        return instrument

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None, **labels: LabelValue
    ) -> Histogram:
        """The histogram registered under (name, labels); ``bounds`` is
        required on first use and must not conflict afterwards."""
        key = (name, _canon_labels(labels))
        if key not in self._metrics and bounds is None:
            raise ValueError(f"first use of histogram {name!r} must supply bounds")
        h = self._get("histogram", name, labels, bounds)
        if bounds is not None and list(bounds) != h.bounds:
            raise ValueError(
                f"histogram {name!r} bounds are fixed at {h.bounds}, got {list(bounds)}"
            )
        return h

    def series(self, name: str, **labels: LabelValue) -> Series:
        return self._get("series", name, labels)

    def add_collector(self, collector: Callable[[], list[dict[str, Any]]]) -> None:
        """Register a snapshot-time record source (hot-path subsystems)."""
        self._collectors.append(collector)

    # ------------------------------------------------------------- querying
    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels: LabelValue):
        """The instrument registered under ``(name, labels)``, or None."""
        hit = self._metrics.get((name, _canon_labels(labels)))
        return hit[1] if hit is not None else None

    def snapshot(self) -> list[dict[str, Any]]:
        """All records — instruments plus collectors — in canonical order.

        Order is ``(metric name, canonical JSON of labels)``: independent
        of creation order and of dict iteration, so a deterministic run
        produces a byte-identical dump.
        """
        records = [
            instrument._record(name, _labels_dict(label_key))
            for (name, label_key), (_, instrument) in self._metrics.items()
        ]
        for collector in self._collectors:
            records.extend(collector())
        records.sort(
            key=lambda r: (r["metric"], json.dumps(r["labels"], sort_keys=True))
        )
        return records

    def to_jsonl(self, path: str | Path) -> Path:
        """Write the snapshot as one JSON object per line."""
        out = Path(path)
        lines = [
            json.dumps(rec, sort_keys=True, default=_json_default)
            for rec in self.snapshot()
        ]
        out.write_text("\n".join(lines) + "\n" if lines else "")
        return out


def _json_default(obj: Any) -> Any:
    """Tolerate numpy scalars in metric values without importing numpy."""
    for attr in ("item",):
        fn = getattr(obj, attr, None)
        if callable(fn):
            return fn()
    raise TypeError(f"metric value {obj!r} is not JSON-serializable")
