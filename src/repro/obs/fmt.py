"""Scalar formatting shared by observability output and :class:`RunLog`.

One formatter, one convention: floats render with 6 significant digits
(enough to tell simulated timings apart, short enough for log lines),
everything else via ``str``.  ``repro.util.logging`` delegates here so a
record echoed to stdout and the same record in a metrics dump agree.
"""

from __future__ import annotations

from typing import Any

__all__ = ["fmt_scalar", "fmt_fields"]


def fmt_scalar(v: Any) -> str:
    """Render one scalar for human-facing log/metric lines."""
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def fmt_fields(fields: dict[str, Any]) -> str:
    """Render ``k=v`` pairs in the dict's own (insertion) order."""
    return " ".join(f"{k}={fmt_scalar(v)}" for k, v in fields.items())
