"""Cross-run metric diffing with regression gating.

Aligns two metrics dumps (JSONL snapshots from
:class:`~repro.obs.export.StreamingMetricsWriter`, ``repro report
--json`` output, or any line stream of ``{"metric": ..., "labels": ...,
"value"|"total": ...}`` records) key-by-key and computes per-metric
deltas.  A metric *regresses* when it **increases** by more than a
relative threshold — every metric in the simulator's dumps (seconds,
bytes, event counts, queue depths) is cost-like, so improvements never
flag.  ``repro obs diff a.jsonl b.jsonl`` renders the result and exits
nonzero on regression, which is what CI gates on.

Alignment key is ``(metric, canonical-JSON labels)``; keys present on
only one side are reported as added/removed, never as regressions.
Records without a scalar value (series dumps, histogram bound arrays)
are skipped.  Thresholds are configurable globally and per metric
prefix (longest prefix wins), e.g. ``{"sim.": 0.25}`` to loosen the
engine counters while keeping the default on ``train.*`` times.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "DiffReport",
    "diff_files",
    "diff_records",
    "load_metric_records",
]

DEFAULT_THRESHOLD = 0.05
"""Default relative-increase threshold (5%) above which a metric is a
regression; the committed baselines gate with this unless overridden."""


def _as_float(value: Any) -> float | None:
    """Scalar view of a record value; None when there is none.

    String forms (``"NaN"``, ``"Infinity"``) round-trip the writer's
    non-finite sanitization.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def load_metric_records(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL dump, keeping metric records only.

    Non-record lines (report prose, config echoes) and blank lines are
    skipped, so the loader accepts both raw snapshot files and the
    ``repro report --json`` output.
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(obj, dict) and "metric" in obj:
                records.append(obj)
    return records


def _index(records: Iterable[dict[str, Any]]) -> dict[tuple[str, str], float]:
    out: dict[tuple[str, str], float] = {}
    for rec in records:
        value = _as_float(rec.get("value", rec.get("total")))
        if value is None:
            continue
        labels = rec.get("labels", {})
        key = (str(rec["metric"]), json.dumps(labels, sort_keys=True))
        out[key] = value
    return out


def _threshold_for(
    metric: str, default: float, overrides: dict[str, float] | None
) -> float:
    if not overrides:
        return default
    best_len = -1
    best = default
    for prefix, thr in overrides.items():
        if metric.startswith(prefix) and len(prefix) > best_len:
            best_len = len(prefix)
            best = thr
    return best


@dataclass(frozen=True)
class MetricDelta:
    """One aligned metric: values on both sides and the verdict."""

    metric: str
    labels: str
    """Canonical-JSON label string (the alignment key's second half)."""
    a: float
    b: float
    threshold: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def relative(self) -> float:
        """Relative change vs ``a`` (+inf when growing from zero)."""
        if self.a != 0.0:
            return self.delta / self.a
        return math.inf if self.delta > 0.0 else 0.0

    @property
    def regressed(self) -> bool:
        """True when ``b`` exceeds ``a`` by more than the threshold."""
        return self.delta > 0.0 and self.relative > self.threshold

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view (``repro obs diff --json``)."""
        rel = self.relative
        return {
            "metric": self.metric,
            "labels": json.loads(self.labels),
            "a": self.a,
            "b": self.b,
            "delta": self.delta,
            "relative": rel if math.isfinite(rel) else repr(rel),
            "threshold": self.threshold,
            "regressed": self.regressed,
        }


@dataclass
class DiffReport:
    """Outcome of aligning two metric dumps."""

    deltas: list[MetricDelta] = field(default_factory=list)
    added: list[tuple[str, str]] = field(default_factory=list)
    """Keys present only in the newer dump (never a regression)."""
    removed: list[tuple[str, str]] = field(default_factory=list)
    """Keys present only in the older dump (never a regression)."""

    @property
    def regressions(self) -> list[MetricDelta]:
        """Regressed deltas, worst relative increase first."""
        return sorted(
            (d for d in self.deltas if d.regressed),
            key=lambda d: (-d.relative, d.metric, d.labels),
        )

    @property
    def exit_code(self) -> int:
        """0 clean, 1 when any aligned metric regressed."""
        return 1 if self.regressions else 0

    def render_text(self, max_rows: int = 20) -> str:
        """Human-readable summary (the CLI's default output)."""
        lines = [
            f"compared {len(self.deltas)} aligned metrics "
            f"(+{len(self.added)} added, -{len(self.removed)} removed)"
        ]
        regs = self.regressions
        if not regs:
            lines.append("no regressions")
        else:
            lines.append(f"{len(regs)} REGRESSION(S):")
            for d in regs[:max_rows]:
                rel = d.relative
                rel_s = f"{rel:+.1%}" if math.isfinite(rel) else "+inf"
                lines.append(
                    f"  {d.metric} {d.labels}: {d.a:.6g} -> {d.b:.6g} "
                    f"({rel_s}, threshold {d.threshold:.1%})"
                )
            if len(regs) > max_rows:
                lines.append(f"  ... and {len(regs) - max_rows} more")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready view of the full report."""
        return {
            "aligned": len(self.deltas),
            "added": [{"metric": m, "labels": json.loads(l)} for m, l in self.added],
            "removed": [
                {"metric": m, "labels": json.loads(l)} for m, l in self.removed
            ],
            "regressions": [d.as_dict() for d in self.regressions],
            "exit_code": self.exit_code,
        }


def diff_records(
    a: Iterable[dict[str, Any]],
    b: Iterable[dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    thresholds: dict[str, float] | None = None,
) -> DiffReport:
    """Align two record streams and compute the delta report.

    ``thresholds`` maps metric-name prefixes to per-metric relative
    thresholds; the longest matching prefix wins over ``threshold``.
    """
    ia, ib = _index(a), _index(b)
    report = DiffReport()
    for key in sorted(ia.keys() & ib.keys()):
        metric, labels = key
        report.deltas.append(
            MetricDelta(
                metric=metric,
                labels=labels,
                a=ia[key],
                b=ib[key],
                threshold=_threshold_for(metric, threshold, thresholds),
            )
        )
    report.added = sorted(ib.keys() - ia.keys())
    report.removed = sorted(ia.keys() - ib.keys())
    return report


def diff_files(
    path_a: str | Path,
    path_b: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
    thresholds: dict[str, float] | None = None,
) -> DiffReport:
    """File-level convenience wrapper over :func:`diff_records`."""
    return diff_records(
        load_metric_records(path_a),
        load_metric_records(path_b),
        threshold=threshold,
        thresholds=thresholds,
    )
