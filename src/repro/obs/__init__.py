"""Unified observability: metrics, hot-path hooks, and trace export.

The paper's evidence *is* observability output — Figures 2-5 are
per-function virtual-time breakdowns, the scaling study is per-rank
timing — so the reproduction carries one first-class layer for it
instead of fragmented ad-hoc counters:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, fixed-bucket histograms, and series, all labelled and dumped
  in deterministic order;
* :mod:`repro.obs.hooks` — :class:`CommStats`, the per-(src, dst)
  traffic matrices and outstanding-message high-water marks for the
  virtual MPI layer;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and flat JSONL metric dumps;
* :mod:`repro.obs.attrib` — exact per-rank time attribution
  (``compute + comm + recovery + wait == finish_time`` bitwise) and the
  Fig-4 counter-flow phase rows;
* :mod:`repro.obs.critpath` — critical-path extraction over the run's
  dependency structure (span- or phase-granular);
* :mod:`repro.obs.diff` — cross-run metric diffing with relative
  regression thresholds (the ``repro obs diff`` CI gate).

Attachment points: ``Engine.attach_obs(registry)``,
``VComm(obs=registry)``, ``HessianFreeOptimizer(obs=registry)``,
``simulate_training(cfg, obs=registry)``, and the ``repro trace`` /
``--obs`` CLI surfaces.  Everything is strictly passive: attaching a
registry never changes a simulated timeline (the determinism goldens run
with it both off and on), and detached code paths pay nothing.
"""

from repro.obs.attrib import (
    RankAttribution,
    RunAttribution,
    attribute_rank,
    attribute_run,
    phase_flow_rows,
    phase_records,
)
from repro.obs.critpath import CriticalPath, PathStep, critical_path
from repro.obs.diff import DiffReport, MetricDelta, diff_files, diff_records
from repro.obs.fmt import fmt_fields, fmt_scalar
from repro.obs.hooks import MESSAGE_SIZE_BOUNDS, CommStats
from repro.obs.export import (
    StreamingMetricsWriter,
    chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    counter_record,
    gauge_record,
    histogram_record,
    series_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "CommStats",
    "MESSAGE_SIZE_BOUNDS",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "StreamingMetricsWriter",
    "counter_record",
    "gauge_record",
    "histogram_record",
    "series_record",
    "fmt_scalar",
    "fmt_fields",
    "RankAttribution",
    "RunAttribution",
    "attribute_rank",
    "attribute_run",
    "phase_flow_rows",
    "phase_records",
    "CriticalPath",
    "PathStep",
    "critical_path",
    "DiffReport",
    "MetricDelta",
    "diff_files",
    "diff_records",
]
