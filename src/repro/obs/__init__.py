"""Unified observability: metrics, hot-path hooks, and trace export.

The paper's evidence *is* observability output — Figures 2-5 are
per-function virtual-time breakdowns, the scaling study is per-rank
timing — so the reproduction carries one first-class layer for it
instead of fragmented ad-hoc counters:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, fixed-bucket histograms, and series, all labelled and dumped
  in deterministic order;
* :mod:`repro.obs.hooks` — :class:`CommStats`, the per-(src, dst)
  traffic matrices and outstanding-message high-water marks for the
  virtual MPI layer;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and flat JSONL metric dumps.

Attachment points: ``Engine.attach_obs(registry)``,
``VComm(obs=registry)``, ``HessianFreeOptimizer(obs=registry)``,
``simulate_training(cfg, obs=registry)``, and the ``repro trace`` /
``--obs`` CLI surfaces.  Everything is strictly passive: attaching a
registry never changes a simulated timeline (the determinism goldens run
with it both off and on), and detached code paths pay nothing.
"""

from repro.obs.fmt import fmt_fields, fmt_scalar
from repro.obs.hooks import MESSAGE_SIZE_BOUNDS, CommStats
from repro.obs.export import (
    StreamingMetricsWriter,
    chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    counter_record,
    gauge_record,
    histogram_record,
    series_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "CommStats",
    "MESSAGE_SIZE_BOUNDS",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "StreamingMetricsWriter",
    "counter_record",
    "gauge_record",
    "histogram_record",
    "series_record",
    "fmt_scalar",
    "fmt_fields",
]
