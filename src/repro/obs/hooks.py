"""Hot-path instrumentation hooks for the simulator and virtual MPI.

These objects are built only when a :class:`~repro.obs.metrics.MetricsRegistry`
is attached to a subsystem; detached subsystems hold ``None`` and pay a
single attribute-load-plus-None-check per guarded site (the ``_fast_p2p``
gating pattern from the PR-2 engine overhaul).  When attached, per-event
work is plain dict arithmetic — no instrument lookups, no label
canonicalization — and everything is folded into finished records at
snapshot time via a registry *collector*.

:class:`CommStats` is the communication observer: per-``(src, dst)``
message/byte matrices, the per-pair **outstanding-message high-water
mark** (messages sent but not yet consumed by a receive — the unbounded-
inbox-growth detector the ROADMAP asked for), and a fixed-bucket message
size histogram.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    counter_record,
    gauge_record,
    histogram_record,
)

__all__ = [
    "CollectiveStats",
    "CommStats",
    "ServeStats",
    "COLLECTIVE_SECONDS_BOUNDS",
    "LATENCY_SECONDS_BOUNDS",
    "BATCH_OCCUPANCY_BOUNDS",
    "MESSAGE_SIZE_BOUNDS",
]

MESSAGE_SIZE_BOUNDS = (
    64.0,
    512.0,
    4096.0,
    32768.0,
    262144.0,
    2097152.0,
    16777216.0,
)
"""Inclusive upper edges (bytes) for the message-size histogram:
eager-protocol small messages through multi-MB theta segments."""


class CommStats:
    """Per-pair communication accounting for one :class:`~repro.vmpi.comm.VComm`.

    ``on_send`` fires at injection (``send`` / ``post`` / ``sendrecv``),
    ``on_consume`` when a receive takes the message out of the
    destination mailbox — so the per-pair outstanding count covers
    in-flight plus inbox-resident messages, and its high-water mark is
    exactly the worst-case per-pair backlog of the protocol.

    The hot path is **log-append only**: both hooks push a tuple onto
    :attr:`log` (the comm layer appends to the same list directly,
    skipping even the method call), and :meth:`_fold` replays the log
    into per-pair rows the first time a report asks.  A plain
    ``list.append`` is several times cheaper than dict row arithmetic,
    which is what keeps attached-mode overhead inside the perf suite's
    5 % macro budget.  Memory is two small tuples per message — bounded
    by simulated message volume, i.e. a few MB for the largest macro
    benchmark shapes.
    """

    __slots__ = ("size", "log", "bulk", "pairs", "size_hist", "_folded", "_bulk_folded")

    def __init__(self, size: int) -> None:
        self.size = size
        self.log: list[tuple[int, int, int]] = []
        """Hook-order event log: ``(src, dst, nbytes)`` for a send,
        ``(src, dst, -1)`` for a consume.  Order is what makes the
        replayed high-water marks exact."""
        self.bulk: list[tuple[Any, Any, Any, int]] = []
        """Vectorized-path event log: ``(src_array, dst_array, nbytes,
        count)`` entries, each describing ``count`` repetitions of a
        send-then-consume on every listed pair (``nbytes`` scalar or a
        per-pair array).  Per-pair message counts, byte counts, and the
        size histogram fold exactly — bit-identical to the scalar
        scheduler's replay.  The outstanding high-water mark folds as
        the phase-steady-state 1 per pair: the vector executor runs each
        collective phase atomically, so transient cross-phase backlogs
        (e.g. a slow root still consuming a loss-tree message when the
        next barrier's sync stub lands) are not modeled — HWMs from bulk
        entries are a lower bound, excluded from cross-path equivalence
        checks (tests/test_sim_vector.py)."""
        self.pairs: dict[tuple[int, int], list[int]] = {}
        """``(src, dst) -> [messages, bytes, outstanding, hwm]``, built
        lazily from :attr:`log`; always read through a report method."""
        self.size_hist = Histogram(MESSAGE_SIZE_BOUNDS)
        self._folded = 0  # log prefix already folded into ``pairs``
        self._bulk_folded = 0  # bulk prefix already folded into ``pairs``

    # ------------------------------------------------------------ hot hooks
    def on_send(self, src: int, dst: int, nbytes: int) -> None:
        self.log.append((src, dst, nbytes))

    def on_consume(self, src: int, dst: int) -> None:
        self.log.append((src, dst, -1))

    def on_bulk(self, src, dst, nbytes, count: int = 1) -> None:
        """Record ``count`` send+consume rounds on each ``(src[i], dst[i])``
        pair of ``nbytes[i]`` (or scalar ``nbytes``) bytes apiece."""
        self.bulk.append((src, dst, nbytes, count))

    # ------------------------------------------------------------- reports
    def _fold(self) -> None:
        """Replay unfolded log entries into the per-pair rows."""
        log = self.log
        pairs = self.pairs
        observe = self.size_hist.observe
        if self._folded != len(log):
            for i in range(self._folded, len(log)):
                src, dst, nb = log[i]
                row = pairs.get((src, dst))
                if row is None:
                    row = pairs[(src, dst)] = [0, 0, 0, 0]
                if nb >= 0:
                    row[0] += 1
                    row[1] += nb
                    out = row[2] + 1
                    row[2] = out
                    if out > row[3]:
                        row[3] = out
                    observe(nb)
                else:
                    row[2] -= 1
            self._folded = len(log)
        bulk = self.bulk
        if self._bulk_folded != len(bulk):
            counts = self.size_hist.counts
            bucket_of = self.size_hist.bucket_of
            for i in range(self._bulk_folded, len(bulk)):
                src, dst, nbytes, count = bulk[i]
                scalar_nb = not hasattr(nbytes, "__len__")
                for j in range(len(src)):
                    s, d = int(src[j]), int(dst[j])
                    nb = int(nbytes) if scalar_nb else int(nbytes[j])
                    row = pairs.get((s, d))
                    if row is None:
                        row = pairs[(s, d)] = [0, 0, 0, 0]
                    row[0] += count
                    row[1] += nb * count
                    # each send is consumed before the pair is reused, so
                    # outstanding peaks at current + 1 and returns
                    if row[2] + 1 > row[3]:
                        row[3] = row[2] + 1
                    counts[bucket_of(nb)] += count
                    # integer byte sizes sum exactly in float64, so the
                    # histogram sum is order-independent here
                    self.size_hist.total += nb * count
            self._bulk_folded = len(bulk)

    def outstanding(self, src: int, dst: int) -> int:
        """Messages sent ``src -> dst`` not yet consumed by a receive."""
        self._fold()
        row = self.pairs.get((src, dst))
        return row[2] if row is not None else 0

    def pair_report(self) -> list[dict[str, int]]:
        """One row per communicating pair, sorted by ``(src, dst)``."""
        self._fold()
        return [
            {
                "src": src,
                "dst": dst,
                "messages": self.pairs[(src, dst)][0],
                "bytes": self.pairs[(src, dst)][1],
                "outstanding_hwm": self.pairs[(src, dst)][3],
            }
            for src, dst in sorted(self.pairs)
        ]

    def hwm_report(self, top: int | None = None) -> list[tuple[tuple[int, int], int]]:
        """Pairs by descending high-water mark (ties broken by pair id).

        The pairs at the head are the protocol's backlog hot spots — an
        async design whose HWM grows with rank count or iteration count
        has an unbounded inbox.
        """
        self._fold()
        ranked = sorted(
            ((pair, row[3]) for pair, row in self.pairs.items()),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked[:top] if top is not None else ranked

    def totals(self) -> dict[str, int]:
        """Whole-run message/byte totals over all (src, dst) pairs."""
        self._fold()
        keys = sorted(self.pairs)
        return {
            "messages": sum(self.pairs[k][0] for k in keys),
            "bytes": sum(self.pairs[k][1] for k in keys),
            "pairs": len(keys),
            "outstanding_hwm_max": max(
                (self.pairs[k][3] for k in keys), default=0
            ),
        }

    def records(self) -> list[dict[str, Any]]:
        """Snapshot collector: aggregate + per-pair metric records."""
        totals = self.totals()  # folds the log
        recs: list[dict[str, Any]] = [
            counter_record("comm.messages", totals["messages"]),
            counter_record("comm.bytes", totals["bytes"]),
            counter_record("comm.pairs", totals["pairs"]),
            gauge_record("comm.outstanding_hwm", totals["outstanding_hwm_max"]),
            histogram_record(
                "comm.message_bytes",
                self.size_hist.bounds,
                self.size_hist.counts,
                self.size_hist.total,
            ),
        ]
        for src, dst in sorted(self.pairs):
            row = self.pairs[(src, dst)]
            recs.append(
                counter_record("comm.pair.messages", row[0], src=src, dst=dst)
            )
            recs.append(
                counter_record("comm.pair.bytes", row[1], src=src, dst=dst)
            )
            recs.append(
                gauge_record(
                    "comm.pair.outstanding_hwm", row[3], src=src, dst=dst
                )
            )
        return recs

    def attach(self, registry: MetricsRegistry) -> "CommStats":
        """Register this tracker's records as a collector; returns self."""
        registry.add_collector(self.records)
        return self


COLLECTIVE_SECONDS_BOUNDS = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
)
"""Inclusive upper edges (simulated seconds) for per-collective duration
histograms: microsecond barriers through second-scale modeled theta
broadcasts."""


class CollectiveStats:
    """Per-(op, algo) collective accounting for one
    :class:`~repro.vmpi.comm.VComm`.

    The collectives append ``(op, algo, simulated duration)`` tuples to
    :attr:`log` as they complete (one entry per rank per collective call
    — the per-rank entry/exit skew is real data, so no dedup).  Folding
    into ``comm.coll.algo{op,algo}`` counters and per-op duration
    histograms happens lazily at scrape time, following the
    :class:`CommStats` log-append-only discipline, so attached-mode
    overhead on the collective path is one list append.
    """

    __slots__ = ("log", "bulk", "counts", "durations", "_folded", "_bulk_folded")

    def __init__(self) -> None:
        self.log: list[tuple[str, str, float]] = []
        """Hook-order event log: ``(op, algo, simulated seconds)``."""
        self.bulk: list[tuple[str, str, Any]] = []
        """Vectorized-path event log: ``(op, algo, durations_array)``
        entries — one array of per-rank durations per collective phase.
        Bucket counts fold exactly (bucketing is order-independent); the
        histogram ``sum`` accumulates in array order rather than the
        scalar scheduler's global event interleave, so it is the one
        collective statistic that is not bit-comparable across paths."""
        self.counts: dict[tuple[str, str], int] = {}
        """``(op, algo) -> completions``, built lazily from :attr:`log`;
        always read through a report method."""
        self.durations: dict[str, Histogram] = {}
        """``op -> simulated-duration histogram`` (fixed bounds)."""
        self._folded = 0  # log prefix already folded
        self._bulk_folded = 0  # bulk prefix already folded

    # ------------------------------------------------------------ hot hook
    def on_collective(self, op: str, algo: str, seconds: float) -> None:
        self.log.append((op, algo, seconds))

    def on_bulk(self, op: str, algo: str, durations) -> None:
        """Record one completed collective per element of ``durations``."""
        self.bulk.append((op, algo, durations))

    # ------------------------------------------------------------- reports
    def _fold(self) -> None:
        log = self.log
        counts = self.counts
        durations = self.durations
        if self._folded != len(log):
            for i in range(self._folded, len(log)):
                op, algo, seconds = log[i]
                key = (op, algo)
                counts[key] = counts.get(key, 0) + 1
                hist = durations.get(op)
                if hist is None:
                    hist = durations[op] = Histogram(COLLECTIVE_SECONDS_BOUNDS)
                hist.observe(seconds)
            self._folded = len(log)
        bulk = self.bulk
        if self._bulk_folded != len(bulk):
            for i in range(self._bulk_folded, len(bulk)):
                op, algo, arr = bulk[i]
                key = (op, algo)
                counts[key] = counts.get(key, 0) + len(arr)
                hist = durations.get(op)
                if hist is None:
                    hist = durations[op] = Histogram(COLLECTIVE_SECONDS_BOUNDS)
                idx = np.searchsorted(hist.bounds, arr, side="left")
                binned = np.bincount(idx, minlength=len(hist.counts))
                for b, n in enumerate(binned):
                    if n:
                        hist.counts[b] += int(n)
                hist.total += float(arr.sum())
            self._bulk_folded = len(bulk)

    def algo_report(self) -> list[tuple[tuple[str, str], int]]:
        """``((op, algo), completions)`` rows, sorted by (op, algo)."""
        self._fold()
        return sorted(self.counts.items())

    def records(self) -> list[dict[str, Any]]:
        """Snapshot collector: per-(op, algo) counters + per-op duration
        histograms."""
        self._fold()
        recs: list[dict[str, Any]] = []
        for (op, algo), n in sorted(self.counts.items()):
            recs.append(counter_record("comm.coll.algo", n, op=op, algo=algo))
        for op in sorted(self.durations):
            hist = self.durations[op]
            recs.append(
                histogram_record(
                    "comm.coll.seconds",
                    hist.bounds,
                    hist.counts,
                    hist.total,
                    op=op,
                )
            )
        return recs

    def attach(self, registry: MetricsRegistry) -> "CollectiveStats":
        """Register this tracker's records as a collector; returns self."""
        registry.add_collector(self.records)
        return self


LATENCY_SECONDS_BOUNDS = (
    0.05,
    0.1,
    0.2,
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
)
"""Inclusive upper edges (virtual seconds) for the request-latency
histogram: sub-100 ms healthy responses through timeout-scale stragglers
near saturation."""

BATCH_OCCUPANCY_BOUNDS = (
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
)
"""Inclusive upper edges (requests per batch) for the batch-occupancy
histogram; the overflow bucket catches policies beyond ``max_batch=32``."""


class ServeStats:
    """Serving-scenario collector: folds a
    :class:`~repro.serve.stats.ServeLog` into ``serve.*`` records.

    Unlike :class:`CommStats` there is no hot hook here at all — the
    scenario keeps its books in the :class:`~repro.serve.stats.ServeLog`
    whether or not obs is attached (the log *is* the run's result), so
    attaching a registry adds literally zero events on the simulated
    path.  All histogram bucketing happens at scrape time from the
    log's append-ordered lists, which keeps the timeline bit-identical
    with obs on or off.
    """

    __slots__ = ("log", "queue")

    def __init__(self, log: Any, queue: Any = None) -> None:
        self.log = log
        self.queue = queue
        """Optional :class:`~repro.serve.queueing.AdmissionQueue` for the
        instantaneous backlog gauge; the peak comes from the log."""

    def records(self) -> list[dict[str, Any]]:
        """Snapshot collector: outcome counters, latency/occupancy
        histograms, queue/replica/autoscale gauges."""
        log = self.log
        recs: list[dict[str, Any]] = [
            counter_record("serve.requests", log.generated, outcome="generated"),
            counter_record("serve.requests", log.admitted, outcome="admitted"),
            counter_record("serve.requests", log.completed, outcome="completed"),
            counter_record("serve.requests", log.dropped, outcome="dropped"),
            counter_record("serve.requests", log.timed_out, outcome="timed_out"),
            counter_record("serve.requests", log.failed, outcome="failed"),
        ]
        lat = Histogram(LATENCY_SECONDS_BOUNDS)
        for v in log.latencies:
            lat.observe(v)
        recs.append(
            histogram_record(
                "serve.latency_seconds", lat.bounds, lat.counts, lat.total
            )
        )
        occ = Histogram(BATCH_OCCUPANCY_BOUNDS)
        for v in log.batch_sizes:
            occ.observe(v)
        recs.append(
            histogram_record(
                "serve.batch_occupancy", occ.bounds, occ.counts, occ.total
            )
        )
        backlog = self.queue.backlog() if self.queue is not None else 0
        recs.append(
            gauge_record("serve.queue_depth", backlog, peak=log.depth_peak)
        )
        recs.append(
            gauge_record(
                "serve.replicas.active", log.active_count, peak=log.active_peak
            )
        )
        recs.append(counter_record("serve.replicas.excluded", len(log.excluded)))
        recs.append(counter_record("serve.autoscale.events", log.scale_ups, dir="up"))
        recs.append(
            counter_record("serve.autoscale.events", log.scale_downs, dir="down")
        )
        for replica in sorted(log.busy):
            recs.append(
                counter_record(
                    "serve.replica.busy_seconds",
                    log.busy[replica],
                    replica=replica,
                )
            )
        return recs

    def attach(self, registry: MetricsRegistry) -> "ServeStats":
        """Register this tracker's records as a collector; returns self."""
        registry.add_collector(self.records)
        return self
