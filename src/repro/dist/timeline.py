"""Span-label conventions and breakdown extraction for simulated runs.

Rank programs in :mod:`repro.dist.simulated` record phase-level spans
with structured labels:

* ``compute.<function>`` — modeled computation (charged via the GEMM/A2
  models), e.g. ``compute.gradient_loss``;
* ``coll.<function>`` — time inside a collective (including straggler
  wait), e.g. ``coll.sync_weights_master``;
* ``p2p.<function>`` — time in point-to-point calls, e.g.
  ``p2p.load_data``.

:func:`split_breakdown` turns a rank's span totals into the three
figure-ready views: per-function compute time (Figs 2-3 input),
per-function collective MPI time, and per-function p2p MPI time
(Figs 4-5).  :func:`cycles_breakdown` further maps compute labels
through the BG/Q cycle model into counter categories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgq.cycles import CycleCategories, CycleModel

__all__ = [
    "COMPUTE",
    "COLL",
    "P2P",
    "label",
    "RankBreakdown",
    "ordered_sum",
    "split_breakdown",
    "cycles_breakdown",
    "COMPUTE_KERNEL_CLASS",
]

COMPUTE = "compute"
COLL = "coll"
P2P = "p2p"

# function label -> BG/Q kernel class for cycle accounting
COMPUTE_KERNEL_CLASS: dict[str, str] = {
    "gradient_loss": "gemm",
    "worker_curvature_product": "gemm",
    "heldout_loss": "gemm",
    "sequence_forward_backward": "elementwise",
    "cg_minimize": "elementwise",  # master's vector arithmetic
    "hf_master": "control",
    "load_data": "io",
}


def label(kind: str, function: str) -> str:
    """Compose a span label, e.g. ``label(COLL, "sync_weights_master")``."""
    if kind not in (COMPUTE, COLL, P2P):
        raise ValueError(f"unknown span kind {kind!r}")
    return f"{kind}.{function}"


def ordered_sum(d: dict[str, float]) -> float:
    """Fold float values in sorted-key order: bitwise reproducible no
    matter the dict's (per-rank, arrival-dependent) insertion order."""
    return sum(d[k] for k in sorted(d))


@dataclass
class RankBreakdown:
    """One rank's time, split by (kind, function)."""

    compute: dict[str, float] = field(default_factory=dict)
    collective: dict[str, float] = field(default_factory=dict)
    p2p: dict[str, float] = field(default_factory=dict)

    @property
    def total_compute(self) -> float:
        return ordered_sum(self.compute)

    @property
    def total_mpi(self) -> float:
        return ordered_sum(self.collective) + ordered_sum(self.p2p)

    @property
    def total(self) -> float:
        return self.total_compute + self.total_mpi


def split_breakdown(span_totals: dict[str, float]) -> RankBreakdown:
    """Partition a rank's per-label totals by label kind."""
    out = RankBreakdown()
    for lbl, secs in span_totals.items():
        if "." not in lbl:
            continue  # raw mpi_send/mpi_recv or other unstructured spans
        kind, function = lbl.split(".", 1)
        if kind == COMPUTE:
            out.compute[function] = out.compute.get(function, 0.0) + secs
        elif kind == COLL:
            out.collective[function] = out.collective.get(function, 0.0) + secs
        elif kind == P2P:
            out.p2p[function] = out.p2p.get(function, 0.0) + secs
    return out


def cycles_breakdown(
    breakdown: RankBreakdown,
    threads_per_core: int,
    model: CycleModel | None = None,
) -> dict[str, CycleCategories]:
    """Per-function hardware-counter categories (Figs 2-3).

    Compute functions classify per :data:`COMPUTE_KERNEL_CLASS`; all MPI
    time (collective + p2p) classifies as ``mpi_wait`` under its function
    name prefixed ``mpi:`` so the figure can stack them side by side.
    """
    model = model or CycleModel()
    out: dict[str, CycleCategories] = {}
    for fn, secs in breakdown.compute.items():
        kclass = COMPUTE_KERNEL_CLASS.get(fn, "control")
        out[fn] = model.split(secs, kclass, threads_per_core)
    for source in (breakdown.collective, breakdown.p2p):
        for fn, secs in source.items():
            key = f"mpi:{fn}"
            cats = model.split(secs, "mpi_wait", threads_per_core)
            out[key] = out[key] + cats if key in out else cats
    return out
