"""Iteration scripts: the per-iteration workload profile of an HF run.

Simulating a 4096-rank training run cannot execute 4096 real gradient
computations per iteration — but it does not need to: the *control flow*
of Algorithm 1 (how many CG iterations each outer iteration ran, how
many held-out evaluations backtracking and the line search spent) is a
small trace.  We extract it from a **real** small-scale HF run
(:func:`calibrate_script`), then replay it at full scale on the DES with
modeled compute — so the simulated figures inherit the algorithm's true
behaviour instead of hand-picked constants.

``represented_iterations`` lets a short simulated run stand for a full
training (the paper: networks "converge ... after 20 to 40 iterations
through the entire data set"): total time = simulated per-iteration cost
x represented/simulated ratio, reported by the harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hf.types import HFResult
from repro.util.rng import spawn

__all__ = ["IterationScript", "calibrate_script", "default_script"]


@dataclass(frozen=True)
class IterationScript:
    """Per-outer-iteration control-flow counts for a simulated run."""

    cg_iters: tuple[int, ...]
    heldout_evals: tuple[int, ...]
    represented_iterations: int = 30

    def __post_init__(self) -> None:
        if not self.cg_iters:
            raise ValueError("need at least one scripted iteration")
        if len(self.cg_iters) != len(self.heldout_evals):
            raise ValueError(
                f"cg_iters ({len(self.cg_iters)}) and heldout_evals "
                f"({len(self.heldout_evals)}) must align"
            )
        if any(c < 1 for c in self.cg_iters):
            raise ValueError("every iteration runs >= 1 CG step")
        if any(h < 1 for h in self.heldout_evals):
            raise ValueError("every iteration evaluates held-out >= once")
        if self.represented_iterations < len(self.cg_iters):
            raise ValueError(
                "represented_iterations must be >= simulated iterations"
            )

    @property
    def n_iterations(self) -> int:
        return len(self.cg_iters)

    @property
    def scale_factor(self) -> float:
        """Multiplier from simulated iterations to a full training run."""
        return self.represented_iterations / self.n_iterations

    def truncated(self, n: int) -> "IterationScript":
        """First ``n`` iterations, keeping the represented total."""
        if not 1 <= n <= self.n_iterations:
            raise ValueError(f"n must be in [1, {self.n_iterations}]")
        return IterationScript(
            cg_iters=self.cg_iters[:n],
            heldout_evals=self.heldout_evals[:n],
            represented_iterations=self.represented_iterations,
        )


def calibrate_script(
    result: HFResult, represented_iterations: int = 30
) -> IterationScript:
    """Extract the control-flow profile of a real HF run."""
    if not result.iterations:
        raise ValueError("HF result has no iterations to calibrate from")
    return IterationScript(
        cg_iters=tuple(it.cg_iterations for it in result.iterations),
        heldout_evals=tuple(
            max(1, it.heldout_evals) for it in result.iterations
        ),
        represented_iterations=max(
            represented_iterations, len(result.iterations)
        ),
    )


def default_script(
    n_iterations: int = 2,
    seed: int = 0,
    represented_iterations: int = 30,
) -> IterationScript:
    """A plausible profile when no calibration run is available.

    CG counts center where Martens-style truncation lands for speech
    DNNs (a few tens of iterations), held-out evaluations reflect CG
    backtracking over ~log_1.3(cg_iters) snapshots plus a short Armijo
    search.
    """
    rng = spawn(seed, "script")
    cg = tuple(int(c) for c in rng.integers(12, 24, size=n_iterations))
    held = tuple(
        int(np.ceil(np.log(c) / np.log(1.3)) // 2 + rng.integers(2, 5))
        for c in cg
    )
    return IterationScript(
        cg_iters=cg,
        heldout_evals=held,
        represented_iterations=represented_iterations,
    )
