"""Master/worker protocol pieces shared by the distributed backends.

The paper's architecture (Section IV): "a master/worker architecture in
which worker processes ... perform data-parallel computation of
gradients and curvature matrix-vector products and the master implements
the Hessian-free optimization."  Rank 0 is the master; ranks 1..P-1 are
workers holding utterance shards.

Commands flow master -> workers by broadcast; results flow back by
gather (rank-ordered fold at the master, so reduced floats are
independent of thread scheduling).  Curvature mini-samples are *derived,
not shipped*: the master broadcasts only a seed, and every worker
recomputes the same global sample with
:func:`global_frame_sample` / :func:`global_utterance_sample` and keeps
its intersection — the paper's "the right set of utterances to adhere to
the randomness needed by the algorithm".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nn.losses import SequenceBatchTargets, UtteranceSpan
from repro.util.rng import spawn

__all__ = [
    "CMD_GRADIENT",
    "CMD_CURV_SETUP",
    "CMD_CURV",
    "CMD_HELDOUT",
    "CMD_STOP",
    "FrameShard",
    "SequenceShard",
    "global_frame_sample",
    "global_utterance_sample",
    "sample_size",
]

CMD_GRADIENT = "gradient"
CMD_CURV_SETUP = "curv_setup"
CMD_CURV = "curv"
CMD_HELDOUT = "heldout"
CMD_STOP = "stop"


def sample_size(total: int, fraction: float) -> int:
    """Global curvature-sample size — one formula for every backend."""
    if total < 1:
        raise ValueError(f"total must be >= 1: {total}")
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0,1]: {fraction}")
    return max(1, int(round(fraction * total)))


def global_frame_sample(
    total_frames: int, fraction: float, base_seed: int, sample_seed: int
) -> np.ndarray:
    """The frame indices of one curvature mini-sample (sorted).

    Identical to :meth:`repro.hf.sources.FrameSource.
    curvature_sample_indices` by construction — serial and distributed
    runs draw the *same* sample.
    """
    k = sample_size(total_frames, fraction)
    rng = spawn(base_seed, "curvature", sample_seed)
    return np.sort(rng.choice(total_frames, size=k, replace=False))


def global_utterance_sample(
    total_utts: int, fraction: float, base_seed: int, sample_seed: int
) -> np.ndarray:
    """Utterance-level analogue for sequence criteria."""
    k = sample_size(total_utts, fraction)
    rng = spawn(base_seed, "curvature", sample_seed)
    return np.sort(rng.choice(total_utts, size=k, replace=False))


@dataclass
class FrameShard:
    """One worker's slice of a frame-level training set."""

    x: np.ndarray
    targets: np.ndarray
    global_ids: np.ndarray
    """Global frame indices of this shard's rows (for sample intersection)."""
    heldout_x: np.ndarray
    heldout_targets: np.ndarray

    def __post_init__(self) -> None:
        if not (
            self.x.shape[0]
            == np.asarray(self.targets).shape[0]
            == self.global_ids.shape[0]
        ):
            raise ValueError("shard arrays must align")
        if self.heldout_x.shape[0] != np.asarray(self.heldout_targets).shape[0]:
            raise ValueError("heldout shard arrays must align")

    @property
    def n_frames(self) -> int:
        return int(self.x.shape[0])

    def sample_rows(self, global_sample: np.ndarray) -> np.ndarray:
        """Local row positions whose global ids are in ``global_sample``."""
        mask = np.isin(self.global_ids, global_sample, assume_unique=False)
        return np.nonzero(mask)[0]


@dataclass
class SequenceShard:
    """One worker's utterances for a sequence criterion."""

    x: np.ndarray
    spans: Sequence[UtteranceSpan]  # rebased to this shard's frame space
    global_utt_ids: np.ndarray
    heldout_x: np.ndarray
    heldout_spans: Sequence[UtteranceSpan]

    def __post_init__(self) -> None:
        if len(self.spans) != self.global_utt_ids.shape[0]:
            raise ValueError("spans and global_utt_ids must align")
        if self.spans and self.spans[-1].end != self.x.shape[0]:
            raise ValueError("spans must tile the shard's frames")

    @property
    def n_frames(self) -> int:
        return int(self.x.shape[0])

    def sample_batch(
        self, global_sample: np.ndarray
    ) -> tuple[np.ndarray, SequenceBatchTargets] | None:
        """(x, targets) for the owned subset of the sample, or None."""
        own = [
            i
            for i, gid in enumerate(self.global_utt_ids)
            if gid in set(global_sample.tolist())
        ]
        if not own:
            return None
        pieces = []
        rebased = []
        pos = 0
        for i in own:
            s = self.spans[i]
            pieces.append(self.x[s.start : s.end])
            length = s.end - s.start
            rebased.append(UtteranceSpan(pos, pos + length, s.states))
            pos += length
        return np.concatenate(pieces, axis=0), SequenceBatchTargets(tuple(rebased))
