"""Distributed Hessian-free training (the paper's Section IV system).

Three cooperating backends over the shared master/worker protocol:

* :mod:`~repro.dist.threaded` — real math on real threads, used for the
  accuracy-parity experiments;
* :mod:`~repro.dist.simulated` — the same protocol as DES rank programs
  at 1024-8192 simulated ranks on the BG/Q machine model, used for the
  paper's timing figures;
* :mod:`~repro.dist.partition` — the Section V-C utterance load
  balancer both backends share.
"""

from repro.dist.partition import (
    Assignment,
    balanced_partition,
    imbalance,
    naive_partition,
)
from repro.dist.protocol import (
    FrameShard,
    SequenceShard,
    global_frame_sample,
    global_utterance_sample,
    sample_size,
)
from repro.dist.script import IterationScript, calibrate_script, default_script
from repro.dist.simulated import SimJobConfig, SimRunResult, simulate_training
from repro.dist.threaded import (
    MasterSource,
    make_frame_shards,
    make_sequence_shards,
    train_threaded_hf,
    worker_loop,
)
from repro.dist.timeline import (
    COLL,
    COMPUTE,
    P2P,
    RankBreakdown,
    cycles_breakdown,
    label,
    split_breakdown,
)
from repro.dist.workload import (
    GEOMETRY_50HR,
    GEOMETRY_400HR,
    ModelGeometry,
    SimWorkload,
)

__all__ = [
    "Assignment",
    "balanced_partition",
    "imbalance",
    "naive_partition",
    "FrameShard",
    "SequenceShard",
    "global_frame_sample",
    "global_utterance_sample",
    "sample_size",
    "IterationScript",
    "calibrate_script",
    "default_script",
    "SimJobConfig",
    "SimRunResult",
    "simulate_training",
    "MasterSource",
    "make_frame_shards",
    "make_sequence_shards",
    "train_threaded_hf",
    "worker_loop",
    "COLL",
    "COMPUTE",
    "P2P",
    "RankBreakdown",
    "cycles_breakdown",
    "label",
    "split_breakdown",
    "GEOMETRY_50HR",
    "GEOMETRY_400HR",
    "ModelGeometry",
    "SimWorkload",
]
