"""Utterance-to-worker partitioning (the paper's Section V-C).

Speech utterances vary wildly in length (our synthetic lengths are
log-normal, like real corpora), so distributing *equal numbers of
utterances* gives workers unequal *frame* counts — and every reduction
then waits for the most-loaded straggler.  The paper's fix: "we
preprocessed the data by sorting and computed the number of utterances
per worker such that they all receive equal amount of data."

* :func:`naive_partition` — round-robin by utterance index (the
  before state, the LB ablation's baseline);
* :func:`balanced_partition` — sort by length, then greedy
  longest-processing-time assignment to the currently lightest worker
  (the classic 4/3-approximation to makespan; this is the paper's
  sorted scheme);
* :func:`imbalance` — max/mean frame load, the quantity that multiplies
  straggler wait time at synchronization points.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Assignment", "naive_partition", "balanced_partition", "imbalance"]


@dataclass(frozen=True)
class Assignment:
    """Utterance indices per worker, plus the length table used."""

    workers: tuple[tuple[int, ...], ...]
    lengths: tuple[int, ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for w in self.workers:
            for u in w:
                if u in seen:
                    raise ValueError(f"utterance {u} assigned twice")
                if not 0 <= u < len(self.lengths):
                    raise ValueError(f"utterance index {u} out of range")
                seen.add(u)
        if len(seen) != len(self.lengths):
            raise ValueError(
                f"{len(self.lengths) - len(seen)} utterances unassigned"
            )

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def frames_per_worker(self) -> np.ndarray:
        return np.array(
            [sum(self.lengths[u] for u in w) for w in self.workers], dtype=np.int64
        )


def _check(lengths: Sequence[int], n_workers: int) -> None:
    if n_workers < 1:
        raise ValueError(f"need >= 1 worker, got {n_workers}")
    if len(lengths) < n_workers:
        raise ValueError(
            f"cannot spread {len(lengths)} utterances over {n_workers} workers"
        )
    if any(l < 1 for l in lengths):
        raise ValueError("all utterance lengths must be >= 1")


def naive_partition(lengths: Sequence[int], n_workers: int) -> Assignment:
    """Round-robin by utterance index, ignoring lengths."""
    _check(lengths, n_workers)
    buckets: list[list[int]] = [[] for _ in range(n_workers)]
    for i in range(len(lengths)):
        buckets[i % n_workers].append(i)
    return Assignment(
        workers=tuple(tuple(b) for b in buckets), lengths=tuple(lengths)
    )


def balanced_partition(lengths: Sequence[int], n_workers: int) -> Assignment:
    """Sorted greedy (LPT): longest utterance to the lightest worker.

    Ties break on worker index, so the result is deterministic for a
    given length table — required for cross-backend reproducibility.
    """
    _check(lengths, n_workers)
    arr = np.asarray(lengths, dtype=np.int64)
    # lexsort's last key is primary: sort by -length, ties by index —
    # identical order to sorted(..., key=lambda i: (-lengths[i], i)) but
    # vectorized (the pure-Python sort dominated planning time at scale)
    order = np.lexsort((np.arange(arr.size), -arr)).tolist()
    heap: list[tuple[int, int]] = [(0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    buckets: list[list[int]] = [[] for _ in range(n_workers)]
    for i in order:
        load, w = heapq.heappop(heap)
        buckets[w].append(i)
        heapq.heappush(heap, (load + lengths[i], w))
    return Assignment(
        workers=tuple(tuple(sorted(b)) for b in buckets), lengths=tuple(lengths)
    )


def imbalance(assignment: Assignment) -> float:
    """``max(load) / mean(load)`` — 1.0 is perfect balance.

    This factor directly inflates every synchronized phase: with
    imbalance r, the makespan of a data-parallel sweep is r x the
    perfectly balanced time.
    """
    loads = assignment.frames_per_worker()
    mean = loads.mean()
    if mean == 0:
        raise ValueError("empty assignment")
    return float(loads.max() / mean)
