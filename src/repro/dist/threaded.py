"""Distributed Hessian-free training on real threads (real math).

This backend runs the *actual* Algorithm-1 optimizer on rank 0 while
worker ranks hold utterance shards and answer gradient / curvature /
held-out requests — the full master/worker protocol of Section IV with
genuine data parallelism (numpy's GEMMs release the GIL, so worker
compute overlaps on multicore hosts).

The master-side :class:`MasterSource` implements
:class:`~repro.hf.types.HFDataSource`, so the optimizer code is the
*same object* that runs serially; the parity tests (paper: "no loss in
accuracy") compare its trajectory against the serial sources at
identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.dist.partition import Assignment, balanced_partition
from repro.dist.protocol import (
    CMD_CURV,
    CMD_CURV_SETUP,
    CMD_GRADIENT,
    CMD_HELDOUT,
    CMD_STOP,
    FrameShard,
    SequenceShard,
    global_frame_sample,
    global_utterance_sample,
    sample_size,
)
from repro.hf.optimizer import HessianFreeOptimizer
from repro.hf.types import HFConfig, HFResult
from repro.nn.gauss_newton import GaussNewtonOperator
from repro.nn.losses import Loss, UtteranceSpan
from repro.nn.network import DNN
from repro.util.logging import RunLog
from repro.vmpi.inprocess import ThreadRankComm, run_threaded

__all__ = ["MasterSource", "worker_loop", "make_frame_shards", "make_sequence_shards", "train_threaded_hf"]


@dataclass
class MasterSource:
    """Master-side HFDataSource that fans work out over a communicator."""

    comm: ThreadRankComm
    total_train_frames: int
    total_heldout_frames: int
    curvature_fraction: float
    curvature_total: int
    """Sampling universe size: total frames (CE) or utterances (MMI)."""
    seed: int

    def _collect(self) -> list:
        parts = self.comm.gather(None, root=0)
        assert parts is not None
        return parts[1:]  # drop the master's own placeholder

    def gradient(self, theta: np.ndarray) -> tuple[float, np.ndarray, int]:
        """Broadcast theta, sum worker loss/gradient shards."""
        self.comm.bcast((CMD_GRADIENT, theta), root=0)
        loss_sum = 0.0
        grad = np.zeros_like(theta)
        frames = 0
        for part_loss, part_grad, part_n in self._collect():
            loss_sum += part_loss
            grad += part_grad
            frames += part_n
        if frames != self.total_train_frames:
            raise RuntimeError(
                f"workers reported {frames} frames, expected "
                f"{self.total_train_frames} — shard assignment is broken"
            )
        return loss_sum, grad, frames

    def curvature_operator(
        self, theta: np.ndarray, lam: float, sample_seed: int
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Distributed damped Gauss-Newton operator: each apply fans a
        vector out to workers and sums their curvature products."""
        self.comm.bcast((CMD_CURV_SETUP, theta, sample_seed), root=0)
        k = sample_size(self.curvature_total, self.curvature_fraction)
        setup = self._collect()  # workers ack with their sampled frame counts
        sampled_frames = sum(setup)

        def op(v: np.ndarray) -> np.ndarray:
            self.comm.bcast((CMD_CURV, v), root=0)
            gv = np.zeros_like(v)
            for part in self._collect():
                gv += part
            return gv / max(sampled_frames, 1) + lam * v

        op.sample_frames = sampled_frames  # type: ignore[attr-defined]
        op.sample_units = k  # type: ignore[attr-defined]
        return op

    def heldout_loss(self, theta: np.ndarray) -> tuple[float, int]:
        """Broadcast theta, sum worker held-out loss shards."""
        self.comm.bcast((CMD_HELDOUT, theta), root=0)
        loss_sum = 0.0
        frames = 0
        for part_loss, part_n in self._collect():
            loss_sum += part_loss
            frames += part_n
        return loss_sum, frames

    def stop(self) -> None:
        self.comm.bcast((CMD_STOP,), root=0)


def worker_loop(
    comm: ThreadRankComm,
    net: DNN,
    loss: Loss,
    shard: FrameShard | SequenceShard,
    curvature_fraction: float,
    curvature_total: int,
    seed: int,
) -> int:
    """Serve master commands until ``stop``; returns commands served."""
    op: GaussNewtonOperator | None = None
    served = 0
    while True:
        cmd = comm.bcast(None, root=0)
        served += 1
        kind = cmd[0]
        if kind == CMD_STOP:
            return served
        if kind == CMD_GRADIENT:
            theta = cmd[1]
            value, grad, n = _shard_gradient(net, loss, shard, theta)
            comm.gather((value, grad, n), root=0)
        elif kind == CMD_CURV_SETUP:
            theta, sample_seed = cmd[1], cmd[2]
            op, n_sampled = _shard_curvature_setup(
                net, loss, shard, theta, curvature_fraction, curvature_total,
                seed, sample_seed,
            )
            comm.gather(n_sampled, root=0)
        elif kind == CMD_CURV:
            v = cmd[1]
            gv = op(v) if op is not None else np.zeros_like(v)
            comm.gather(gv, root=0)
        elif kind == CMD_HELDOUT:
            theta = cmd[1]
            value, n = _shard_heldout(net, loss, shard, theta)
            comm.gather((value, n), root=0)
        else:
            raise ValueError(f"unknown command {kind!r}")


# -------------------------------------------------------------- shard math
def _shard_gradient(net, loss, shard, theta):
    if isinstance(shard, FrameShard):
        if shard.n_frames == 0:
            return 0.0, np.zeros_like(theta), 0
        value, grad = net.loss_and_grad(theta, shard.x, loss, shard.targets)
        return value, grad, shard.n_frames
    from repro.nn.losses import SequenceBatchTargets

    if not shard.spans:
        return 0.0, np.zeros_like(theta), 0
    targets = SequenceBatchTargets(tuple(shard.spans))
    value, grad = net.loss_and_grad(theta, shard.x, loss, targets)
    return value, grad, shard.n_frames


def _shard_curvature_setup(
    net, loss, shard, theta, fraction, total, base_seed, sample_seed
):
    """Build this worker's raw (unnormalized, undamped) G-product op."""
    if isinstance(shard, FrameShard):
        sample = global_frame_sample(total, fraction, base_seed, sample_seed)
        rows = shard.sample_rows(sample)
        if rows.size == 0:
            return None, 0
        op = GaussNewtonOperator(
            net=net,
            theta=theta,
            x=shard.x[rows],
            loss=loss,
            targets=np.asarray(shard.targets)[rows],
            lam=0.0,
            normalizer=1.0,
        )
        return op, int(rows.size)
    sample = global_utterance_sample(total, fraction, base_seed, sample_seed)
    batch = shard.sample_batch(sample)
    if batch is None:
        return None, 0
    xb, tb = batch
    op = GaussNewtonOperator(
        net=net, theta=theta, x=xb, loss=loss, targets=tb, lam=0.0, normalizer=1.0
    )
    return op, tb.n_frames


def _shard_heldout(net, loss, shard, theta):
    if isinstance(shard, FrameShard):
        if shard.heldout_x.shape[0] == 0:
            return 0.0, 0
        value, _ = net.loss_and_grad(
            theta, shard.heldout_x, loss, shard.heldout_targets
        )
        return value, shard.heldout_x.shape[0]
    from repro.nn.losses import SequenceBatchTargets

    if not shard.heldout_spans:
        return 0.0, 0
    targets = SequenceBatchTargets(tuple(shard.heldout_spans))
    value, _ = net.loss_and_grad(theta, shard.heldout_x, loss, targets)
    return value, shard.heldout_x.shape[0]


# ----------------------------------------------------------- shard builders
def make_frame_shards(
    x: np.ndarray,
    targets: np.ndarray,
    heldout_x: np.ndarray,
    heldout_targets: np.ndarray,
    utt_lengths: Sequence[int],
    n_workers: int,
    partitioner: Callable[[Sequence[int], int], Assignment] = balanced_partition,
) -> list[FrameShard]:
    """Split concatenated frame data into per-worker shards by utterance.

    ``utt_lengths`` must tile ``x`` exactly; held-out frames are split
    contiguously (held-out balance matters less — it is evaluated, not
    differentiated, and it is small).
    """
    if sum(utt_lengths) != x.shape[0]:
        raise ValueError(
            f"utterance lengths sum to {sum(utt_lengths)}, x has {x.shape[0]} frames"
        )
    assignment = partitioner(utt_lengths, n_workers)
    starts = np.concatenate([[0], np.cumsum(utt_lengths)])
    h_bounds = np.linspace(0, heldout_x.shape[0], n_workers + 1).astype(int)
    shards = []
    for w, utts in enumerate(assignment.workers):
        ids = np.concatenate(
            [np.arange(starts[u], starts[u + 1]) for u in utts]
        ) if utts else np.empty(0, dtype=np.int64)
        shards.append(
            FrameShard(
                x=x[ids],
                targets=np.asarray(targets)[ids],
                global_ids=ids,
                heldout_x=heldout_x[h_bounds[w] : h_bounds[w + 1]],
                heldout_targets=np.asarray(heldout_targets)[
                    h_bounds[w] : h_bounds[w + 1]
                ],
            )
        )
    return shards


def make_sequence_shards(
    x: np.ndarray,
    spans: Sequence[UtteranceSpan],
    heldout_x: np.ndarray,
    heldout_spans: Sequence[UtteranceSpan],
    n_workers: int,
    partitioner: Callable[[Sequence[int], int], Assignment] = balanced_partition,
) -> list[SequenceShard]:
    """Split utterance-structured data into per-worker shards."""
    lengths = [s.end - s.start for s in spans]
    assignment = partitioner(lengths, n_workers)
    h_assign = (
        partitioner([s.end - s.start for s in heldout_spans], n_workers)
        if len(heldout_spans) >= n_workers
        else None
    )
    shards = []
    for w, utts in enumerate(assignment.workers):
        pieces, rebased = [], []
        pos = 0
        for u in utts:
            s = spans[u]
            pieces.append(x[s.start : s.end])
            length = s.end - s.start
            rebased.append(UtteranceSpan(pos, pos + length, s.states))
            pos += length
        sx = (
            np.concatenate(pieces, axis=0)
            if pieces
            else np.empty((0, x.shape[1]))
        )
        if h_assign is not None:
            h_utts = h_assign.workers[w]
        else:
            h_utts = tuple(range(len(heldout_spans))) if w == 0 else ()
        h_pieces, h_rebased = [], []
        pos = 0
        for u in h_utts:
            s = heldout_spans[u]
            h_pieces.append(heldout_x[s.start : s.end])
            length = s.end - s.start
            h_rebased.append(UtteranceSpan(pos, pos + length, s.states))
            pos += length
        hx = (
            np.concatenate(h_pieces, axis=0)
            if h_pieces
            else np.empty((0, heldout_x.shape[1]))
        )
        shards.append(
            SequenceShard(
                x=sx,
                spans=rebased,
                global_utt_ids=np.array(utts, dtype=np.int64),
                heldout_x=hx,
                heldout_spans=h_rebased,
            )
        )
    return shards


# ------------------------------------------------------------- entry point
def train_threaded_hf(
    net: DNN,
    loss: Loss,
    shards: list[FrameShard] | list[SequenceShard],
    theta0: np.ndarray,
    config: HFConfig,
    curvature_fraction: float = 0.02,
    seed: int = 0,
    log: RunLog | None = None,
    timeout: float = 600.0,
) -> HFResult:
    """Run distributed HF: 1 master + ``len(shards)`` workers on threads."""
    n_workers = len(shards)
    if n_workers < 1:
        raise ValueError("need at least one worker shard")
    total_train = sum(s.n_frames for s in shards)
    total_heldout = sum(
        s.heldout_x.shape[0] for s in shards
    )
    if isinstance(shards[0], FrameShard):
        curvature_total = total_train
    else:
        curvature_total = sum(len(s.spans) for s in shards)

    def master_program(comm: ThreadRankComm) -> HFResult:
        source = MasterSource(
            comm=comm,
            total_train_frames=total_train,
            total_heldout_frames=total_heldout,
            curvature_fraction=curvature_fraction,
            curvature_total=curvature_total,
            seed=seed,
        )
        opt = HessianFreeOptimizer(source, config, log=log)
        try:
            return opt.run(theta0)
        finally:
            source.stop()

    def make_worker(shard):
        def program(comm: ThreadRankComm) -> int:
            return worker_loop(
                comm, net, loss, shard, curvature_fraction, curvature_total, seed
            )

        return program

    programs = [master_program] + [make_worker(s) for s in shards]
    results = run_threaded(n_workers + 1, programs, timeout=timeout)
    return results[0]
