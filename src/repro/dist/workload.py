"""Full-scale workload sizing and modeled per-phase compute times.

Maps the paper's training workload — model geometry, corpus frame
counts, curvature sampling — to modeled seconds per worker phase via the
GEMM performance model.  The simulated rank programs charge these times
on the DES, so the figure-level timings inherit the real operation mix
(every forward/backward/R-op GEMM of the real code, at the real shapes)
evaluated on the modeled machine.

Geometry presets follow the paper's numbers: "roughly 10-50 million
parameters" for typical speech models (the 50-hour preset lands at ~41 M)
and "a deep network with over 100M parameters" for the 400-hour/two-rack
run (~123 M).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.gemm.perf import GemmPerfModel, GemmProblem

__all__ = ["ModelGeometry", "SimWorkload", "GEOMETRY_50HR", "GEOMETRY_400HR"]


@dataclass(frozen=True)
class ModelGeometry:
    """DNN layer sizes for workload modeling (no real weights needed)."""

    layer_dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.layer_dims) < 2:
            raise ValueError(f"need >= 2 layer dims: {self.layer_dims}")
        if any(d < 1 for d in self.layer_dims):
            raise ValueError(f"dims must be >= 1: {self.layer_dims}")

    @cached_property
    def n_params(self) -> int:
        return sum(
            i * o + o for i, o in zip(self.layer_dims[:-1], self.layer_dims[1:])
        )

    @property
    def n_outputs(self) -> int:
        return self.layer_dims[-1]

    def layer_pairs(self) -> list[tuple[int, int]]:
        return list(zip(self.layer_dims[:-1], self.layer_dims[1:]))


GEOMETRY_50HR = ModelGeometry((360, 2048, 2048, 2048, 2048, 2048, 9300))
"""~41 M parameters — the paper's typical 10-50 M range."""

GEOMETRY_400HR = ModelGeometry((360, 4096, 4096, 4096, 4096, 4096, 9300))
"""~123 M parameters — the paper's "over 100M parameters" two-rack model."""


@dataclass(frozen=True)
class SimWorkload:
    """Sizing + per-phase time model for one training configuration."""

    geometry: ModelGeometry
    train_frames: int
    heldout_frames: int
    curvature_fraction: float = 0.02
    precision: str = "sp"
    sequence_states: int = 0
    """> 0 enables the sequence-criterion forward-backward surcharge
    (cost ~ frames x states^2), sized by the *effective* denominator-
    graph branching (lattice-free MMI here; lattice arcs in the paper)."""
    perf: GemmPerfModel = field(default_factory=GemmPerfModel)
    framework_efficiency: float = 0.13
    """Fraction of the modeled pure-GEMM rate the full application
    sustains (framework overheads, non-GEMM ops, layout conversions,
    in-order-core sensitivity to everything that is not the tuned
    kernel).  Calibrated so the BG/Q-vs-Xeon ratio matches Table I:
    the paper's own numbers (9 h on 96 Xeon processes vs 1.3 h on 4096
    BG/Q ranks, ~43x the parallelism at ~2x the per-rank SP peak) imply
    the BG/Q application sustained roughly 15 % of the Xeon baseline's
    per-flop efficiency — the out-of-order Xeon forgives untuned code,
    the in-order A2 does not.  The Xeon comparator uses 0.85 (see
    :mod:`repro.harness.speedup`)."""

    def __post_init__(self) -> None:
        if self.train_frames < 1 or self.heldout_frames < 1:
            raise ValueError("frame counts must be >= 1")
        if not 0 < self.curvature_fraction <= 1:
            raise ValueError(
                f"curvature_fraction must be in (0,1]: {self.curvature_fraction}"
            )
        if not 0 < self.framework_efficiency <= 1:
            raise ValueError(
                f"framework_efficiency must be in (0,1]: {self.framework_efficiency}"
            )
        # Memo for _pass_seconds (plain attribute, not a dataclass field).
        # Balanced partitioning gives many workers identical frame
        # counts, so per-phase times repeat across the per-worker setup
        # loops; the model is pure, so caching is result-identical.
        object.__setattr__(self, "_pass_cache", {})

    # ---------------------------------------------------------------- bytes
    @property
    def dtype_bytes(self) -> int:
        return 4 if self.precision == "sp" else 8

    @cached_property
    def theta_bytes(self) -> int:
        """Wire size of one weight broadcast / gradient reduction."""
        return self.geometry.n_params * self.dtype_bytes

    def shard_bytes(self, frames: int) -> int:
        """Wire size of one worker's training shard (load_data)."""
        return frames * self.geometry.layer_dims[0] * self.dtype_bytes

    # ----------------------------------------------------- per-phase seconds
    def _pass_seconds(
        self, frames: int, cores: float, tpc: int, gemms_per_layer: float, rpn: int
    ) -> float:
        if frames <= 0:
            return 0.0
        key = (frames, cores, tpc, gemms_per_layer, rpn)
        cached = self._pass_cache.get(key)
        if cached is not None:
            return cached
        total = 0.0
        for fan_in, fan_out in self.geometry.layer_pairs():
            p = GemmProblem(frames, fan_out, fan_in, self.precision)
            total += self.perf.seconds(p, cores, tpc, rpn) * gemms_per_layer
        total /= self.framework_efficiency
        self._pass_cache[key] = total
        return total

    def _seq_fb_seconds(self, frames: int, cores: float, tpc: int) -> float:
        """Forward-backward over the denominator graph: ~10 ops per
        (frame, state, state) cell, each involving a log-sum-exp step.

        This code is branchy and transcendental-bound — nothing like the
        tuned GEMM kernel — so the sustained fraction of peak is tiny
        and *core-architecture dependent*: an out-of-order Xeon pipelines
        exp() at ~4 % of peak, the in-order A2 manages ~0.2 %.  The two
        constants are calibrated to Table I's criterion slowdowns
        (sequence/CE = 18.7/9 ~ 2.1x on Xeon, 4.19/1.3 ~ 3.2x on BG/Q).
        """
        if self.sequence_states <= 0 or frames <= 0:
            return 0.0
        flops = 10.0 * frames * self.sequence_states**2
        eff = 0.04 if self.perf.kernel.out_of_order else 0.002
        rate = self.perf.core.peak_gflops * 1e9 * cores * eff
        return flops / rate

    def gradient_seconds(
        self, frames: int, cores: float, tpc: int, rpn: int = 1
    ) -> float:
        """Full forward + backward over ``frames`` (3 GEMMs/layer: forward,
        weight-gradient, delta propagation)."""
        t = self._pass_seconds(frames, cores, tpc, 3.0, rpn)
        return t + self._seq_fb_seconds(frames, cores, tpc)

    def curvature_setup_seconds(
        self, frames: int, cores: float, tpc: int, rpn: int = 1
    ) -> float:
        """The per-CG-call forward pass that caches activations."""
        return self._pass_seconds(frames, cores, tpc, 1.0, rpn)

    def curvature_product_seconds(
        self, frames: int, cores: float, tpc: int, rpn: int = 1
    ) -> float:
        """One G v product: R-op forward (2 GEMMs/layer) + backward (2)."""
        return self._pass_seconds(frames, cores, tpc, 4.0, rpn)

    def heldout_seconds(
        self, frames: int, cores: float, tpc: int, rpn: int = 1
    ) -> float:
        """Forward only (plus sequence scoring if enabled)."""
        t = self._pass_seconds(frames, cores, tpc, 1.0, rpn)
        return t + self._seq_fb_seconds(frames, cores, tpc)

    def per_worker_seconds(
        self, kind: str, frames, cores: float, tpc: int, rpn: int = 1
    ):
        """Vectorized per-worker phase times for the SPMD fast path.

        ``frames`` is an integer array of per-worker frame counts;
        returns a float64 array where element ``i`` is **the identical
        scalar call** ``<kind>_seconds(int(frames[i]), cores, tpc, rpn)``
        — the model is evaluated once per *unique* frame count (balanced
        partitioning repeats counts heavily) and gathered back, so the
        result is bit-for-bit what the per-rank program loop computes,
        at O(unique) model cost.  ``kind`` is one of ``gradient``,
        ``curvature_setup``, ``curvature_product``, ``heldout``.
        """
        fn = getattr(self, f"{kind}_seconds")
        frames = np.asarray(frames)
        uniq, inverse = np.unique(frames, return_inverse=True)
        vals = np.array(
            [fn(int(f), cores, tpc, rpn) for f in uniq], dtype=np.float64
        )
        return vals[inverse].reshape(frames.shape)

    def master_vector_op_seconds(self, ops: float = 6.0) -> float:
        """CG bookkeeping on the master: ``ops`` sweeps over theta,
        memory-bandwidth-bound on one node."""
        nbytes = self.geometry.n_params * 8 * ops
        return nbytes / self.perf.memory.ddr_bandwidth
