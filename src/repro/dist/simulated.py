"""Simulated distributed HF training on the virtual BG/Q.

Runs the master/worker protocol of Section IV as generator rank programs
on the discrete-event engine, at the paper's true scale (1024-8192 MPI
ranks): payloads are byte-counted stubs, worker compute is charged
through the GEMM/A2 performance models at each worker's *actual* shard
and curvature-sample sizes, and communication executes the real
collective algorithms on the torus cost model.  Control flow comes from
an :class:`~repro.dist.script.IterationScript` calibrated on a real
small-scale HF run.

What this reproduces (and what the tests assert):

* Fig 1(a)/(b): end-to-end time per ``ranks-rpn-threads`` configuration;
* Figs 2-5: per-rank per-function compute/collective/p2p breakdowns,
  convertible to cycle categories via :mod:`repro.dist.timeline`;
* the LB ablation: ``partitioner="naive"`` vs ``"balanced"``;
* the COMM ablation: ``bcast_algorithm="serial"`` (socket-style) vs
  ``"binomial"`` (MPI_Bcast);
* the cluster comparison: swap in the Ethernet network model, the Xeon
  perf model, and Linux jitter (see :mod:`repro.cluster`).
"""

from __future__ import annotations

import logging
import math
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bgq.kernel import CnkNoise, NoiseModel
from repro.bgq.network import TorusNetworkModel
from repro.bgq.node import RunShape
from repro.dist.partition import balanced_partition, naive_partition
from repro.dist.script import IterationScript, default_script
from repro.dist.timeline import COLL, COMPUTE, P2P, RankBreakdown, label, split_breakdown
from repro.dist.workload import SimWorkload
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultPolicy,
    FaultRecoveryError,
    RecoveryLog,
)
from repro.sim.engine import Timeout
from repro.sim.trace import Tracer
from repro.nn.parallel_sgd import exposed_comm_model
from repro.speech.hmm import HmmSpec
from repro.util.rng import spawn
from repro.vmpi.algoselect import CollectivePolicy
from repro.vmpi.collcost import bcast_cost, collective_params, reduce_cost
from repro.vmpi.collectives import bcast, reduce, serial_bcast
from repro.vmpi.comm import ANY_SOURCE, ANY_TAG, RankCtx, RecvTimeoutError, VComm
from repro.vmpi.costmodel import NetworkModel, PayloadStub

_log = logging.getLogger(__name__)

__all__ = ["SimJobConfig", "SimRunResult", "simulate_training"]

_TAG_DATA = 77
_TAG_WORK0 = 200
"""First tag of the fault-policy master/worker protocol: each dispatched
phase gets a unique consecutive tag (kept far below the reserved
collective band at 1_000_000), so late or duplicate replies can never be
mistaken for another phase's."""


@dataclass(frozen=True)
class SimJobConfig:
    """Everything one simulated training run needs."""

    shape: RunShape
    workload: SimWorkload
    script: IterationScript = field(default_factory=default_script)
    partitioner: str = "balanced"  # "balanced" | "naive"
    bcast_algorithm: str = "binomial"  # "binomial" | "serial"
    curvature_sampling: str = "frame"  # "frame" | "utterance"
    """How workers draw their curvature mini-sample: "frame" takes an
    exact fraction of local frames (balanced; mild content jitter),
    "utterance" takes whole utterances until the share is reached —
    utterance granularity makes one long-utterance worker stall every CG
    product, which is the ablation showing why frame-level sampling (or
    the paper's careful balancing) matters at scale."""
    curvature_jitter: float = 0.08
    """Relative std of per-worker curvature-time variation under frame
    sampling (content mix effects; the paper's Fig. 3 notes the random
    sample "could contribute to the variance")."""
    load_data_mode: str = "master"
    """How training shards reach workers:

    * ``"master"`` — the paper's one-layer architecture: the master
      ships every shard point-to-point (Fig 2's growing ``load_data``);
    * ``"staged"`` — two-level relay: the master sends group bundles to
      every ``load_data_fanout``-th worker, which forwards to its group.
      Spoiler (and the DATA ablation's finding): this barely helps,
      because the master's NIC egress — total bytes at injection
      bandwidth — is the binding constraint either way;
    * ``"parallel_io"`` — workers read their shards from the parallel
      filesystem through the I/O nodes concurrently (no master relay),
      which is what actually removes the bottleneck."""
    load_data_fanout: int = 64
    """Group size for ``"staged"`` distribution."""
    io_aggregate_bandwidth: float = 20e9
    """Filesystem aggregate read bandwidth for ``"parallel_io"``
    (GPFS-era BG/Q installations: tens of GB/s)."""
    hmm: HmmSpec = field(default_factory=HmmSpec)
    seed: int = 0
    segment_bytes: int = 1 << 20
    network: NetworkModel | None = None
    """Defaults to the BG/Q torus for the run shape; the cluster
    comparator passes an Ethernet model instead."""
    noise: NoiseModel = field(default_factory=CnkNoise)
    collective_selection: str = "fixed"  # "fixed" | "auto"
    """``"fixed"`` keeps the historical single-algorithm cost model;
    ``"auto"`` routes every large-message collective through
    :class:`~repro.vmpi.algoselect.CollectivePolicy`, which picks the
    cheapest of binomial / van-de-Geijn-segmented / ring / Rabenseifner /
    torus-pipelined per ``(op, ranks, nbytes)``."""
    overlap_gradient: bool = False
    """Overlap the gradient allreduce with backprop, DDP-style: layer
    gradients are coalesced into ``gradient_bucket_bytes`` buckets in
    backward order and each bucket's reduction pipelines behind the
    compute that produces the next one, so only the *exposed* (unhidden)
    communication is charged after the gradient compute."""
    gradient_bucket_bytes: int = 1 << 22
    """Bucket capacity for :attr:`overlap_gradient` (25 MB-class models
    at 4 MB buckets give ~10 pipeline stages)."""
    fault_plan: FaultPlan | None = None
    """Optional seeded fault schedule (crashes, stragglers, link
    degradation, message drops) injected into the DES.  ``None`` (the
    default) leaves every hot path untouched — all fault-free goldens are
    bit-identical.  A plan without a :attr:`fault_policy` injects into
    the standard collective protocol, where a crash surfaces as a
    :class:`~repro.sim.engine.DeadlockError` (fault *detection* without
    recovery)."""
    fault_policy: FaultPolicy | None = None
    """Opt-in recovery: switches the trainer to the master-driven
    tagged-p2p protocol with timeout/retry collection, dead-worker
    exclusion, quorum CG, and modeled master checkpoint-restart (see
    DESIGN.md §8).  Changes the communication pattern even with no
    faults injected, so it gets its own determinism goldens."""

    def __post_init__(self) -> None:
        if self.shape.ranks < 2:
            raise ValueError("need a master and at least one worker")
        if self.partitioner not in ("balanced", "naive"):
            raise ValueError(f"unknown partitioner {self.partitioner!r}")
        if self.curvature_sampling not in ("frame", "utterance"):
            raise ValueError(
                f"unknown curvature_sampling {self.curvature_sampling!r}"
            )
        if self.curvature_jitter < 0:
            raise ValueError("curvature_jitter must be >= 0")
        if self.bcast_algorithm not in ("binomial", "serial"):
            raise ValueError(f"unknown bcast algorithm {self.bcast_algorithm!r}")
        if self.segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        if self.load_data_mode not in ("master", "staged", "parallel_io"):
            raise ValueError(f"unknown load_data_mode {self.load_data_mode!r}")
        if self.load_data_fanout < 2:
            raise ValueError(
                f"load_data_fanout must be >= 2: {self.load_data_fanout}"
            )
        if self.io_aggregate_bandwidth <= 0:
            raise ValueError("io_aggregate_bandwidth must be > 0")
        if self.collective_selection not in ("fixed", "auto"):
            raise ValueError(
                f"unknown collective_selection {self.collective_selection!r}"
            )
        if self.gradient_bucket_bytes < 1:
            raise ValueError("gradient_bucket_bytes must be >= 1")
        if self.fault_plan is not None:
            self.fault_plan.validate_ranks(self.shape.ranks)

    @property
    def n_workers(self) -> int:
        """Worker count (every rank except the master)."""
        return self.shape.ranks - 1


@dataclass
class SimRunResult:
    """Virtual-time outcome of one simulated training run."""

    config: SimJobConfig
    load_data_seconds: float
    iteration_seconds: float
    """Virtual time of the simulated iterations (post-load_data)."""
    tracer: Tracer = field(repr=False, default=None)  # type: ignore[assignment]
    total_messages: int = 0
    total_bytes: int = 0
    recovery: RecoveryLog | None = field(repr=False, default=None)
    """Recovery actions taken by the master (fault-policy runs only)."""
    finish_time: float = 0.0
    """Exact ``Engine.finish_time`` of the run (the bit-level anchor of
    the attribution invariant — NOT ``load + iteration``, whose float
    re-sum can differ in the last ulp)."""
    rank_end_times: list[float] | None = field(repr=False, default=None)
    """Per-rank virtual finish times (names the run's straggler)."""
    phase_log: list[tuple[str, float, int]] | None = field(repr=False, default=None)
    """Vector fast path's ``(label, end, straggler)`` dependency log;
    ``None`` on the scalar path (which records spans instead)."""
    execution_path: str = "scalar"
    """Which executor produced the (path-invariant) numbers: ``scalar``,
    ``vector``, ``vector+sharded``, or ``speculative`` (the sharded
    pool's optimistic window protocol)."""

    @property
    def excluded_ranks(self) -> tuple[int, ...]:
        """Ranks permanently excluded by the fault policy (empty if none)."""
        if self.recovery is None:
            return ()
        return self.recovery.excluded_ranks

    @property
    def simulated_iterations(self) -> int:
        """Number of outer HF iterations actually simulated."""
        return self.config.script.n_iterations

    @property
    def per_iteration_seconds(self) -> float:
        return self.iteration_seconds / self.simulated_iterations

    @property
    def represented_total_seconds(self) -> float:
        """Projected full-training time (load + represented iterations)."""
        return (
            self.load_data_seconds
            + self.per_iteration_seconds
            * self.config.script.represented_iterations
        )

    @property
    def represented_total_hours(self) -> float:
        return self.represented_total_seconds / 3600.0

    def breakdown(self, rank: int) -> RankBreakdown:
        return split_breakdown(self.tracer.totals(f"rank{rank}"))

    def master_breakdown(self) -> RankBreakdown:
        return self.breakdown(0)

    def worker_breakdown(self, worker: int = 1) -> RankBreakdown:
        """Per-function breakdown of one worker rank (default: rank 1)."""
        if not 1 <= worker < self.config.shape.ranks:
            raise ValueError(f"worker rank must be in [1, ranks): {worker}")
        return self.breakdown(worker)

    def mean_worker_breakdown(self, sample: int = 16) -> RankBreakdown:
        """Average breakdown over an evenly spaced sample of workers."""
        ranks = np.linspace(
            1, self.config.shape.ranks - 1, min(sample, self.config.n_workers)
        ).astype(int)
        acc = RankBreakdown()
        for r in ranks:
            b = self.breakdown(int(r))
            for d_acc, d in (
                (acc.compute, b.compute),
                (acc.collective, b.collective),
                (acc.p2p, b.p2p),
            ):
                for k, v in d.items():
                    d_acc[k] = d_acc.get(k, 0.0) + v / len(ranks)
        return acc

    def attribution(self, ranks: "list[int] | None" = None):
        """Exact per-rank time attribution (:mod:`repro.obs.attrib`).

        ``ranks`` restricts the per-rank set; by default the master, the
        straggler, and an evenly spaced worker sample are attributed
        (full enumeration at 100k ranks is pointless in a report).
        """
        from repro.obs.attrib import attribute_run, worker_sample

        if ranks is None:
            p = self.config.shape.ranks
            picked = [0] + worker_sample(p)
            ends = self.rank_end_times
            if ends:
                straggler = max(range(len(ends)), key=lambda r: (ends[r], -r))
                if straggler not in picked:
                    picked.append(straggler)
            ranks = sorted(set(picked))
        return attribute_run(self, ranks)

    def critical_path(self):
        """The run's critical path (:mod:`repro.obs.critpath`)."""
        from repro.obs.critpath import critical_path

        return critical_path(self)


# --------------------------------------------------------------- planning
@dataclass
class _Plan:
    """Precomputed per-worker loads (frames) for every phase."""

    grad_frames: np.ndarray  # (workers,)
    heldout_frames: np.ndarray  # (workers,)
    curv_frames: list[np.ndarray]  # per outer iteration, (workers,)
    shard_bytes: np.ndarray  # (workers,)


def _draw_utterance_lengths(cfg: SimJobConfig) -> np.ndarray:
    """Full-scale utterance length table matching the corpus generator's
    log-normal distribution (lengths only — no features materialized)."""
    spec = cfg.hmm
    rng = spawn(cfg.seed, "sim-lengths")
    mu = np.log(spec.mean_length) - 0.5 * spec.length_sigma**2
    target = cfg.workload.train_frames
    est = max(16, int(target / spec.mean_length * 1.1) + 16)
    lengths: list[np.ndarray] = []
    got = 0
    while got < target:
        draw = np.clip(
            np.round(rng.lognormal(mu, spec.length_sigma, size=est)),
            spec.min_length,
            spec.max_length,
        ).astype(np.int64)
        cum = got + np.cumsum(draw)
        cut = int(np.searchsorted(cum, target)) + 1
        lengths.append(draw[:cut])
        got = int(cum[min(cut, len(cum)) - 1])
        est = max(16, est // 4)
    return np.concatenate(lengths)


def _build_plan(cfg: SimJobConfig) -> _Plan:
    lengths = _draw_utterance_lengths(cfg)
    w = cfg.n_workers
    part_fn = balanced_partition if cfg.partitioner == "balanced" else naive_partition
    if len(lengths) < w:
        # tiny test workloads: pad with minimum-length utterances
        pad = np.full(w - len(lengths) + 1, cfg.hmm.min_length, dtype=np.int64)
        lengths = np.concatenate([lengths, pad])
    assignment = part_fn(lengths.tolist(), w)
    grad_frames = assignment.frames_per_worker()

    worker_of_utt = np.empty(len(lengths), dtype=np.int64)
    for wi, utts in enumerate(assignment.workers):
        worker_of_utt[list(utts)] = wi

    heldout = np.full(w, cfg.workload.heldout_frames // w, dtype=np.int64)
    heldout[: cfg.workload.heldout_frames % w] += 1

    # Curvature sampling is *local and balanced*, mirroring Section V-C's
    # philosophy: every worker contributes its share (fraction x local
    # frames) of the sample, redrawn per CG-Minimize call.
    #
    # "frame" granularity takes that share exactly (plus a small seeded
    # content jitter); "utterance" granularity accumulates whole
    # utterances until the share is reached, so one long utterance can
    # blow a worker's sample up — the ablation quantifying why sampling
    # granularity matters at thousands of workers.
    curv: list[np.ndarray] = []
    frac = cfg.workload.curvature_fraction
    if cfg.curvature_sampling == "utterance":
        worker_lengths = [lengths[list(utts)] for utts in assignment.workers]
    for it in range(cfg.script.n_iterations):
        rng = spawn(cfg.seed, "sim-curv", it)
        if cfg.curvature_sampling == "frame":
            base = np.maximum(1, np.round(frac * grad_frames)).astype(np.int64)
            jitter = rng.normal(1.0, cfg.curvature_jitter, size=w)
            frames = np.maximum(
                1, np.round(base * np.clip(jitter, 0.5, 1.5))
            ).astype(np.int64)
        else:
            frames = np.zeros(w, dtype=np.int64)
            for wi, wl_lens in enumerate(worker_lengths):
                if wl_lens.size == 0:
                    continue
                target = max(1, int(round(frac * int(wl_lens.sum()))))
                start = int(rng.integers(0, wl_lens.size))
                rolled = np.roll(wl_lens, -start)
                cum = np.cumsum(rolled)
                stop = int(np.searchsorted(cum, target)) + 1
                frames[wi] = int(cum[min(stop, len(cum)) - 1])
        curv.append(frames)

    shard_bytes = np.array(
        [cfg.workload.shard_bytes(int(f)) for f in grad_frames], dtype=np.int64
    )
    return _Plan(
        grad_frames=grad_frames,
        heldout_frames=heldout,
        curv_frames=curv,
        shard_bytes=shard_bytes,
    )


# ----------------------------------------------------------- rank programs
def _make_programs(
    cfg: SimJobConfig,
    plan: _Plan,
    load_done: list[float],
    network: NetworkModel,
    policy: CollectivePolicy | None = None,
    injector: FaultInjector | None = None,
    recovery: RecoveryLog | None = None,
):
    """Build the per-rank generator programs for one training run.

    With no ``cfg.fault_policy`` this returns the synchronous collective
    protocol (the paper's); with one it returns the fault-tolerant
    master-driven tagged-p2p protocol (DESIGN.md §8), recording every
    recovery action into ``recovery``.
    """
    shape = cfg.shape
    wl = cfg.workload
    cores = shape.cores_per_rank
    tpc = shape.threads_per_core
    rpn = shape.ranks_per_node
    theta = PayloadStub(wl.theta_bytes, "theta")
    seg = cfg.segment_bytes
    alpha, coll_bw = collective_params(network)

    def _fast_path(nbytes: int) -> bool:
        """Large payloads take the validated closed-form cost; small ones
        execute the real tree algorithms message-by-message."""
        return nbytes > seg and shape.ranks > 8

    def _bcast_model(nbytes: int) -> tuple[str, float]:
        """(algo label, closed-form cost) for a fast-path broadcast."""
        if policy is not None:
            algo, cost = policy.bcast_choice(shape.ranks, nbytes)
            return str(algo), cost
        return "fixed", bcast_cost(shape.ranks, nbytes, alpha, coll_bw)

    def _reduce_model(nbytes: int) -> tuple[str, float]:
        """(algo label, closed-form cost) for a fast-path reduction."""
        if policy is not None:
            algo, cost = policy.reduce_choice(shape.ranks, nbytes)
            return str(algo), cost
        return "fixed", reduce_cost(shape.ranks, nbytes, alpha, coll_bw)

    # Almost every collective in the protocol moves theta; freeze its
    # routing decision and closed-form costs once (bit-identical to
    # recomputing them per call — same pure functions, same arguments).
    theta_nbytes = wl.theta_bytes
    theta_fast = _fast_path(theta_nbytes)
    theta_bcast_algo, theta_bcast_cost = _bcast_model(theta_nbytes)
    theta_reduce_algo, theta_reduce_cost = _reduce_model(theta_nbytes)

    sync_stub = PayloadStub(4, "sync")
    go_stub = PayloadStub(4, "go")

    def _modeled_collective(
        ctx: RankCtx, lbl: str, cost: float, op: str = "coll", algo: str = "fixed"
    ):
        """Tiny-message barrier (straggler wait stays emergent) followed
        by the closed-form transfer charge."""
        stats = ctx.comm.coll_stats
        t0 = ctx.comm.engine._now
        yield from reduce(ctx, sync_stub, root=0)
        yield from bcast(ctx, go_stub if ctx.rank == 0 else None, root=0)
        if cost > 0:
            yield float(cost)
        ctx.record_span(lbl, t0)
        if stats is not None:
            stats.log.append((op, algo, ctx.comm.engine._now - t0))

    serial = cfg.bcast_algorithm == "serial"

    # DDP-style bucketed gradient overlap: layer gradients coalesced in
    # backward order; each bucket's reduction pipelines behind the
    # compute producing the next, so only the exposed communication is
    # charged after the (full) gradient compute.
    overlap = cfg.overlap_gradient
    if overlap:
        layer_bytes = [
            (i * o + o) * wl.dtype_bytes for i, o in wl.geometry.layer_pairs()
        ]
        # shared with the vector fast path: both paths build the bucket
        # plan, per-bucket reduction prices and exposed-comm schedule
        # through this one constructor, so every rank's overlap charge
        # is bit-identical on either executor
        _bucket_plan, _exposed = exposed_comm_model(
            layer_bytes,
            cfg.gradient_bucket_bytes,
            theta_nbytes,
            lambda b: _reduce_model(b)[1],
        )
        grad_algo = theta_reduce_algo + "+overlap"

    # span labels, composed once per run instead of once per span
    lbl_sync_master = label(COLL, "sync_weights_master")
    lbl_sync = label(COLL, "sync_weights")
    lbl_cg_bcast = label(COLL, "cg_bcast")
    lbl_cg_reduce = label(COLL, "cg_reduce")
    lbl_reduce_grad = label(COLL, "reduce_gradient")
    lbl_reduce_loss = label(COLL, "reduce_loss")
    lbl_gradient = label(COMPUTE, "gradient_loss")
    lbl_curvature = label(COMPUTE, "worker_curvature_product")
    lbl_heldout = label(COMPUTE, "heldout_loss")

    def coll_bcast(ctx: RankCtx, lbl: str, payload=None):
        if serial:
            t0 = ctx.now
            result = yield from serial_bcast(ctx, payload, root=0)
            ctx.record_span(lbl, t0)
            return result
        if isinstance(payload, PayloadStub) and payload.nbytes != theta_nbytes:
            nbytes = payload.nbytes
            fast = _fast_path(nbytes)
            algo, cost = _bcast_model(nbytes) if fast else ("fixed", 0.0)
        else:
            fast = theta_fast
            algo, cost = theta_bcast_algo, theta_bcast_cost
        if fast:
            yield from _modeled_collective(ctx, lbl, cost, "bcast", algo)
            return payload
        t0 = ctx.now
        result = yield from bcast(ctx, payload, root=0, segment_bytes=seg)
        ctx.record_span(lbl, t0)
        return result

    def coll_reduce(ctx: RankCtx, lbl: str, payload):
        if isinstance(payload, PayloadStub) and payload.nbytes != theta_nbytes:
            nbytes = payload.nbytes
            fast = _fast_path(nbytes)
            algo, cost = _reduce_model(nbytes) if fast else ("fixed", 0.0)
        else:
            fast = theta_fast
            algo, cost = theta_reduce_algo, theta_reduce_cost
        if fast:
            yield from _modeled_collective(ctx, lbl, cost, "reduce", algo)
            return payload if ctx.rank == 0 else None
        t0 = ctx.now
        result = yield from reduce(ctx, payload, root=0, segment_bytes=seg)
        ctx.record_span(lbl, t0)
        return result

    def noisy(seconds: float, rng: np.random.Generator) -> float:
        return cfg.noise.perturb(seconds, rng)

    fanout = cfg.load_data_fanout
    mode = cfg.load_data_mode
    total_shard_bytes = float(plan.shard_bytes.sum())

    def master_load(ctx: RankCtx):
        # load_data: get shards to the workers per cfg.load_data_mode.
        t0 = ctx.now
        if mode == "staged":
            for g0 in range(1, shape.ranks, fanout):
                group = range(g0, min(g0 + fanout, shape.ranks))
                bundle = int(sum(plan.shard_bytes[w - 1] for w in group))
                yield from ctx.send(
                    # repro: noqa(VMPI006) deliberate asymmetry: the staged
                    # relay re-ships group "bundle"s as per-member "shard"s
                    # on the same data stream; peers never overlap (master
                    # sends only to leaders, leaders only to members)
                    g0, PayloadStub(bundle, "bundle"), tag=_TAG_DATA
                )
            ctx.record_span(label(P2P, "load_data"), t0)
        elif mode == "master":
            for w in range(1, shape.ranks):
                yield from ctx.send(
                    w, PayloadStub(int(plan.shard_bytes[w - 1]), "shard"),
                    tag=_TAG_DATA,
                )
            ctx.record_span(label(P2P, "load_data"), t0)
        # parallel_io: workers read directly; the master does nothing.
        load_done[0] = ctx.now

    def worker_load(ctx: RankCtx, widx: int):
        t0 = ctx.now
        if mode == "staged":
            rank = widx + 1
            leader = ((rank - 1) // fanout) * fanout + 1
            if rank == leader:
                yield from ctx.recv(source=0, tag=_TAG_DATA)
                for member in range(
                    leader + 1, min(leader + fanout, shape.ranks)
                ):
                    yield from ctx.send(
                        member,
                        PayloadStub(
                            int(plan.shard_bytes[member - 1]), "shard"
                        ),
                        tag=_TAG_DATA,
                    )
            else:
                yield from ctx.recv(source=leader, tag=_TAG_DATA)
            ctx.record_span(label(P2P, "load_data"), t0)
        elif mode == "parallel_io":
            # concurrent reads share the filesystem: everyone takes
            # total_bytes / aggregate_bandwidth (function-shipped I/O
            # through the I/O nodes, no master relay)
            yield from ctx.compute(
                total_shard_bytes / cfg.io_aggregate_bandwidth,
                label(COMPUTE, "load_data"),
            )
        else:
            yield from ctx.recv(source=0, tag=_TAG_DATA)
            ctx.record_span(label(P2P, "load_data"), t0)

    def master_program(ctx: RankCtx):
        yield from master_load(ctx)

        # The per-phase compute charges are invariant across iterations
        # (same frames, same machine shape), so evaluate the perf models
        # once instead of once per loop body — identical floats, and the
        # GEMM model drops out of the simulator's hot path.
        hf_master_secs = wl.master_vector_op_seconds(4.0)
        cg_minimize_secs = wl.master_vector_op_seconds(6.0)
        if overlap:
            # the master produces no gradient; its charge is the exposed
            # communication behind the slowest worker's nominal compute
            # (the barrier inside the modeled collective makes the actual
            # straggler wait emergent either way)
            master_exposed = _exposed(
                wl.gradient_seconds(int(plan.grad_frames.max()), cores, tpc, rpn)
            )
        for it in range(cfg.script.n_iterations):
            # gradient phase: theta out, gradient back
            yield from coll_bcast(ctx, lbl_sync_master, theta)
            if overlap:
                yield from _modeled_collective(
                    ctx, lbl_reduce_grad, master_exposed, "reduce", grad_algo
                )
            else:
                yield from coll_reduce(ctx, lbl_reduce_grad, theta)
            yield from ctx.compute(hf_master_secs, label(COMPUTE, "hf_master"))
            # CG loop
            for _k in range(cfg.script.cg_iters[it]):
                yield from coll_bcast(ctx, lbl_cg_bcast, theta)
                yield from coll_reduce(ctx, lbl_cg_reduce, theta)
                yield from ctx.compute(
                    cg_minimize_secs, label(COMPUTE, "cg_minimize")
                )
            # held-out evaluations (CG backtracking + Armijo)
            for _e in range(cfg.script.heldout_evals[it]):
                yield from coll_bcast(ctx, lbl_sync_master, theta)
                yield from coll_reduce(
                    ctx, lbl_reduce_loss, PayloadStub(16, "loss")
                )
        return ctx.now

    def make_worker(widx: int) -> Callable:
        def worker_program(ctx: RankCtx):
            rng = spawn(cfg.seed, "noise", widx)
            yield from worker_load(ctx, widx)

            gf = int(plan.grad_frames[widx])
            hf = int(plan.heldout_frames[widx])
            # Invariant perf-model charges, hoisted out of the loops (the
            # per-call noisy() perturbation stays inside so the rng draw
            # sequence — and thus every simulated time — is unchanged).
            gradient_secs = wl.gradient_seconds(gf, cores, tpc, rpn)
            heldout_secs = wl.heldout_seconds(hf, cores, tpc, rpn)
            loss_stub = PayloadStub(16, "loss")
            for it in range(cfg.script.n_iterations):
                yield from coll_bcast(ctx, lbl_sync)
                g = noisy(gradient_secs, rng)
                yield from ctx.compute(g, lbl_gradient)
                if overlap:
                    # full gradient compute already charged above; the
                    # bucketed pipeline leaves only the exposed comm
                    yield from _modeled_collective(
                        ctx, lbl_reduce_grad, _exposed(g), "reduce", grad_algo
                    )
                else:
                    yield from coll_reduce(ctx, lbl_reduce_grad, theta)
                cf = int(plan.curv_frames[it][widx])
                # per-CG-call forward cache (setup) charged on first product
                setup = wl.curvature_setup_seconds(cf, cores, tpc, rpn)
                product_secs = wl.curvature_product_seconds(cf, cores, tpc, rpn)
                for k in range(cfg.script.cg_iters[it]):
                    yield from coll_bcast(ctx, lbl_cg_bcast)
                    secs = product_secs
                    if k == 0:
                        secs += setup
                    yield from ctx.compute(
                        noisy(secs, rng),
                        lbl_curvature,
                    )
                    yield from coll_reduce(ctx, lbl_cg_reduce, theta)
                for _e in range(cfg.script.heldout_evals[it]):
                    yield from coll_bcast(ctx, lbl_sync)
                    yield from ctx.compute(
                        noisy(heldout_secs, rng),
                        lbl_heldout,
                    )
                    yield from coll_reduce(
                        ctx, lbl_reduce_loss, loss_stub
                    )
            return ctx.now

        return worker_program

    pol = cfg.fault_policy
    if pol is None:
        return [master_program] + [make_worker(w) for w in range(cfg.n_workers)]

    # ----------------------------------------------- fault-tolerant protocol
    # Master-driven tagged p2p (DESIGN.md §8): every phase (gradient, one
    # CG product, one held-out eval) gets a unique tag; the master sends
    # work to each live worker and collects replies under that tag with a
    # bounded timeout/retry/backoff loop.  Strict phases exclude workers
    # that stay silent through all retries; quorum phases (CG) proceed
    # once ``pol.cg_quorum`` of the live set replied, keeping stragglers
    # in the protocol.  Work payloads are PayloadStubs whose ``kind``
    # string ("grad:<it>", "cg:<it>:<k>", "eval:<it>:<e>", "shutdown")
    # tells the worker what to compute and charge.
    assert recovery is not None  # simulate_training builds one with the policy
    shutdown_stub = PayloadStub(4, "shutdown")
    lbl_collect = label(P2P, "ft_collect")
    lbl_restart = label(COMPUTE, "master_restart")
    lbl_hf_master = label(COMPUTE, "hf_master")
    lbl_cg_minimize = label(COMPUTE, "cg_minimize")
    total_frames = float(plan.grad_frames.sum())

    def ft_master(ctx: RankCtx):
        yield from master_load(ctx)
        hf_master_secs = wl.master_vector_op_seconds(4.0)
        cg_minimize_secs = wl.master_vector_op_seconds(6.0)
        live = list(range(1, shape.ranks))
        phase = [0]
        lost_frames = [0.0]
        restart_at = (
            injector.master_crash_time() if injector is not None else None
        )
        restarted = False

        def dispatch_collect(what: str, payload: PayloadStub,
                             quorum: float, strict: bool):
            """Send ``payload`` to every live worker under a fresh tag and
            collect replies; returns the set of ranks that answered."""
            t0 = ctx.now
            tag = _TAG_WORK0 + phase[0]
            phase[0] += 1
            for w in live:
                yield from ctx.send(w, payload, tag=tag)
            needed = (
                len(live) if strict
                else max(1, math.ceil(quorum * len(live)))
            )
            replied: set[int] = set()
            retries = 0
            timeout = pol.recv_timeout
            while len(replied) < needed:
                try:
                    msg = yield from ctx.recv(
                        source=ANY_SOURCE, tag=tag, timeout=timeout
                    )
                except RecvTimeoutError as err:
                    missing = [w for w in live if w not in replied]
                    # err carries the (source, tag) the wait was for —
                    # the structured fields the bugfix attached
                    recovery.add(
                        ctx.now, "timeout", 0,
                        f"{what} tag={err.tag} after {err.timeout:g}s "
                        f"missing={missing}",
                    )
                    if retries >= pol.max_retries:
                        break
                    retries += 1
                    timeout *= pol.backoff
                    recovery.add(
                        ctx.now, "retry", 0,
                        f"{what} resend to {missing} "
                        f"next_timeout={timeout:g}",
                    )
                    for w in missing:
                        yield from ctx.send(w, payload, tag=tag)
                    continue
                if msg.src not in replied:
                    replied.add(msg.src)
            if len(replied) < needed:
                missing = [w for w in live if w not in replied]
                if strict:
                    for w in missing:
                        live.remove(w)
                        lost_frames[0] += float(plan.grad_frames[w - 1])
                        recovery.add(
                            ctx.now, "exclude", w,
                            f"silent through {retries} retries of {what}",
                        )
                        # best-effort: a straggler (not dead) that wakes up
                        # later must drain to this and exit
                        yield from ctx.send(w, shutdown_stub, tag=tag)
                    if not live:
                        raise FaultRecoveryError(
                            f"all workers dead at {what} (t={ctx.now:g})"
                        )
                    surviving = total_frames - lost_frames[0]
                    recovery.add(
                        ctx.now, "renormalize", 0,
                        f"gradient weight over {surviving:.0f}/"
                        f"{total_frames:.0f} surviving frames",
                    )
                else:
                    if not replied:
                        raise FaultRecoveryError(
                            f"no quorum for {what}: zero replies "
                            f"(t={ctx.now:g})"
                        )
                    recovery.add(
                        ctx.now, "partial", 0,
                        f"{what} proceeding with {len(replied)}/{needed} "
                        "GN-sample workers",
                    )
            ctx.record_span(lbl_collect, t0)
            return replied

        for it in range(cfg.script.n_iterations):
            if (
                restart_at is not None
                and not restarted
                and ctx.now >= restart_at
            ):
                # Fail-stop master: model the respawn reloading the last
                # iteration-boundary checkpoint (util.checkpoint format)
                # and replaying nothing — iteration-granular recovery.
                restarted = True
                yield from ctx.compute(pol.restart_seconds, lbl_restart)
                recovery.add(
                    ctx.now, "master_restart", 0,
                    f"checkpoint-restart resumed before iteration {it} "
                    f"({pol.restart_seconds:g}s modeled reload)",
                )
            yield from dispatch_collect(
                f"grad:{it}", PayloadStub(theta_nbytes, f"grad:{it}"),
                1.0, True,
            )
            yield from ctx.compute(hf_master_secs, lbl_hf_master)
            for k in range(cfg.script.cg_iters[it]):
                yield from dispatch_collect(
                    f"cg:{it}:{k}",
                    PayloadStub(theta_nbytes, f"cg:{it}:{k}"),
                    pol.cg_quorum, False,
                )
                yield from ctx.compute(cg_minimize_secs, lbl_cg_minimize)
            for e in range(cfg.script.heldout_evals[it]):
                yield from dispatch_collect(
                    f"eval:{it}:{e}",
                    PayloadStub(theta_nbytes, f"eval:{it}:{e}"),
                    1.0, True,
                )
        tag = _TAG_WORK0 + phase[0]
        for w in live:
            yield from ctx.send(w, shutdown_stub, tag=tag)
        return ctx.now

    def ft_make_worker(widx: int) -> Callable:
        def ft_worker(ctx: RankCtx):
            rng = spawn(cfg.seed, "noise", widx)
            yield from worker_load(ctx, widx)
            gf = int(plan.grad_frames[widx])
            hfr = int(plan.heldout_frames[widx])
            gradient_secs = wl.gradient_seconds(gf, cores, tpc, rpn)
            heldout_secs = wl.heldout_seconds(hfr, cores, tpc, rpn)
            loss_stub = PayloadStub(16, "loss")
            last_tag = -1
            last_reply = loss_stub
            while True:
                msg = yield from ctx.recv(source=0, tag=ANY_TAG, timeout=None)
                kind = msg.payload.kind
                if kind == "shutdown":
                    return ctx.now
                if msg.tag == last_tag:
                    # duplicate work (a master retry that crossed our
                    # reply): retransmit the cached reply, don't recompute
                    yield from ctx.send(0, last_reply, tag=msg.tag)
                    continue
                parts = kind.split(":")
                op = parts[0]
                if op == "grad":
                    yield from ctx.compute(noisy(gradient_secs, rng), lbl_gradient)
                    reply: PayloadStub = theta
                elif op == "cg":
                    it, k = int(parts[1]), int(parts[2])
                    cf = int(plan.curv_frames[it][widx])
                    secs = wl.curvature_product_seconds(cf, cores, tpc, rpn)
                    if k == 0:
                        secs += wl.curvature_setup_seconds(cf, cores, tpc, rpn)
                    yield from ctx.compute(noisy(secs, rng), lbl_curvature)
                    reply = theta
                else:  # "eval"
                    yield from ctx.compute(noisy(heldout_secs, rng), lbl_heldout)
                    reply = loss_stub
                yield from ctx.send(0, reply, tag=msg.tag)
                last_tag = msg.tag
                last_reply = reply

        return ft_worker

    return [ft_master] + [ft_make_worker(w) for w in range(cfg.n_workers)]


# -------------------------------------------------------------- entry point
def simulate_training(
    cfg: SimJobConfig,
    obs: object | None = None,
    trace_p2p: bool = False,
    vector: bool | None = None,
    shards: int = 1,
    speculate: bool | None = None,
) -> SimRunResult:
    """Run one simulated training configuration to completion.

    ``obs``, when given, is a :class:`~repro.obs.metrics.MetricsRegistry`
    to instrument the run with: engine event counts and queue depths,
    per-(src, dst) traffic matrices, and the outstanding-message
    high-water mark.  Observability is strictly passive — every simulated
    number is bit-identical with it on or off (pinned by the determinism
    goldens).  ``trace_p2p`` additionally records per-message
    ``mpi_send``/``mpi_recv`` spans (heavy at scale; meant for
    ``repro trace`` exports of small shapes).

    ``vector`` controls the SPMD fast path
    (:mod:`repro.dist.vectorized`): ``None`` follows the
    ``REPRO_SIM_VECTOR`` env toggle (default on), ``False`` forces the
    scalar scheduler, ``True`` requests the fast path.  Either way the
    fast path only engages when the run is eligible (see
    :func:`repro.dist.vectorized.vector_fallback_reason`; DESIGN.md
    §6e) — heterogeneous runs (faults, recovery, staged load, serial
    bcast, non-power-of-two ranks, small-theta shapes) fall back to the
    per-process scheduler, and simulated results are bit-identical on
    both paths.  ``collective_selection="auto"`` and
    ``overlap_gradient`` runs stay on the fast path.  When a requested
    vector run falls back, the reason is recorded as a
    ``sim.vector.fallback{reason=...}`` counter (if ``obs`` is
    attached) and a debug log line, so a silent scalar-path regression
    is observable instead of just slow.  ``shards > 1`` additionally
    partitions the vector kernels across OS processes
    (:mod:`repro.sim.shard`); it is ignored on the scalar path.
    ``speculate`` selects the sharded pool's optimistic window protocol
    (checkpointed per-shard clock slices, rollback on cross-shard
    causality violation) instead of the conservative two-barrier
    protocol; ``None`` follows the ``REPRO_SIM_SPECULATE`` env toggle
    (default off).  Committed results are bit-identical either way.
    """
    plan = _build_plan(cfg)
    network = cfg.network
    if network is None:
        network = TorusNetworkModel(
            nodes=cfg.shape.nodes, ranks_per_node=cfg.shape.ranks_per_node
        )
    policy = None
    if cfg.collective_selection == "auto":
        policy = CollectivePolicy.from_network(network, cfg.shape.ranks)
    injector = None
    if cfg.fault_plan is not None and not cfg.fault_plan.empty:
        # rank 0 is spared from kill when a policy is attached: the
        # master program models checkpoint-restart instead of dying
        spare = (0,) if cfg.fault_policy is not None else ()
        injector = FaultInjector(cfg.fault_plan, spare=spare)
    recovery = RecoveryLog() if cfg.fault_policy is not None else None
    tracer = Tracer()
    comm = VComm(
        cfg.shape.ranks,
        # closed-form collective params come from the base model either
        # way (the wrapper delegates them); only per-message p2p costs
        # route through degraded windows
        network=injector.wrap_network(network) if injector is not None else network,
        tracer=tracer,
        trace_p2p=trace_p2p,
        obs=obs,
        coll_policy=policy,
        faults=injector,
    )
    if obs is not None and (injector is not None or recovery is not None):
        from repro.obs.metrics import counter_record

        def _fault_records() -> list[dict]:
            recs = []
            if injector is not None:
                recs.extend(injector.obs_records())
            if recovery is not None:
                recs.append(counter_record("train.recoveries", recovery.recoveries))
                recs.append(
                    counter_record(
                        "train.excluded_ranks", len(recovery.excluded_ranks)
                    )
                )
            return recs

        obs.add_collector(_fault_records)
    if obs is not None:
        from repro.obs.attrib import phase_records

        spec = (
            f"{cfg.shape.ranks}-{cfg.shape.ranks_per_node}"
            f"-{cfg.shape.threads_per_rank}"
        )
        obs.add_collector(lambda: phase_records(tracer, cfg.shape.ranks, spec))
    load_done = [0.0]
    from repro.dist.vectorized import (
        run_vectorized,
        vector_enabled,
        vector_fallback_reason,
    )

    fallback = (
        vector_fallback_reason(cfg, network, trace_p2p)
        if vector_enabled(vector)
        else "disabled"
    )
    if fallback is None:
        if speculate is None:
            speculate = os.environ.get("REPRO_SIM_SPECULATE", "0") == "1"
        if shards > 1:
            execution_path = "speculative" if speculate else "vector+sharded"
        else:
            execution_path = "vector"
        end_time, phase_log = run_vectorized(
            cfg, plan, network, policy, comm, load_done,
            shards=shards, speculate=bool(speculate),
        )
    else:
        # only a *requested* fast path that could not engage is a
        # fallback worth counting; an explicit vector=False is not
        if fallback != "disabled":
            if obs is not None:
                obs.counter("sim.vector.fallback", reason=fallback).inc()
            _log.debug(
                "vector fast path fallback (reason=%s): %d ranks on the "
                "scalar scheduler", fallback, cfg.shape.ranks,
            )
        programs = _make_programs(
            cfg, plan, load_done, network, policy,
            injector=injector, recovery=recovery,
        )
        end_time, _values = comm.run(programs)
        phase_log = None
        execution_path = "scalar"
    if injector is not None:
        injector.record_degraded_spans(tracer, end_time)
    return SimRunResult(
        config=cfg,
        load_data_seconds=load_done[0],
        iteration_seconds=end_time - load_done[0],
        tracer=tracer,
        total_messages=comm.total_sends,
        total_bytes=comm.total_bytes,
        recovery=recovery,
        finish_time=end_time,
        rank_end_times=comm.rank_finish_times,
        phase_log=phase_log,
        execution_path=execution_path,
    )
