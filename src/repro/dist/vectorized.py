"""Vectorized SPMD fast path: whole-phase array execution of the trainer.

When every rank runs the same program shape — the synchronous collective
protocol of :mod:`repro.dist.simulated` with no faults, binomial control
trees, and a power-of-two communicator — the per-iteration schedule is a
fixed sequence of *homogeneous phases*: a modeled-collective barrier
(4-byte sync reduce + 4-byte go bcast + closed-form transfer charge,
priced either by the fixed closed forms or by the same memoized
``collective_selection="auto"`` policy the scalar path consults), a
per-worker compute charge, a master compute charge, a real 16-byte
binomial loss reduction, or — with ``overlap_gradient`` — a per-rank
exposed-communication charge from the DDP-style bucketed
:func:`~repro.nn.parallel_sgd.overlap_schedule`.  This module
replays that schedule as numpy operations over the per-rank clock vector
— one heap event per phase via :class:`repro.sim.engine.VectorPhase`
instead of O(ranks) generator steps per collective — and reproduces the
scalar scheduler's virtual times, message counts, span totals, and comm
matrices bit for bit (asserted by tests/test_sim_vector.py and gated by
the determinism goldens).

Bit-identity discipline (DESIGN.md §6e):

* every floating-point expression replicates the scalar code's exact
  operation sequence — ``max(t_send + transfer, end_wire) - t_send`` for
  delivery delay, ``(t0 + s) - t0`` for span durations — never an
  algebraically equal rewrite;
* per-edge message costs come from the network model's *own* scalar
  ``p2p_time``/``wire_time``/``injection_time`` calls, evaluated once
  per cost-equivalence class (same-node flag + torus hop count + byte
  count) and gathered back over the edge arrays — the formulas are
  never re-derived in numpy;
* per-rank clock folds follow each rank's program order: the binomial
  tree sweeps process levels in the same ascending (reduce) /
  descending (bcast) mask order the generators execute, and per-edge
  wire-busy state is keyed exactly like the scalar scheduler's
  ``(src, dst)`` map.
"""

# repro: spmd-vectorized  (module-wide: per-rank work is array ops; see DET004)

from __future__ import annotations

import os
from typing import Any, Callable

import numpy as np

from repro.bgq.kernel import CnkNoise
from repro.bgq.network import TorusNetworkModel
from repro.dist.timeline import COLL, COMPUTE, P2P, label
from repro.nn.parallel_sgd import exposed_comm_model
from repro.sim.engine import VectorPhase
from repro.vmpi.collcost import (
    bcast_cost,
    collective_params,
    fixed_reduce_cost_fn,
    reduce_cost,
)
from repro.vmpi.collectives import binomial_levels
from repro.vmpi.costmodel import UniformNetwork

__all__ = [
    "run_vectorized",
    "vector_eligible",
    "vector_enabled",
    "vector_fallback_reason",
]

_SYNC_BYTES = 4
"""Sync/go stub size inside a modeled collective's emergent barrier."""

_LOSS_BYTES = 16
"""Loss payload reduced through the real binomial tree every eval."""


def vector_enabled(vector: bool | None) -> bool:
    """Resolve the run-level switch: an explicit ``vector`` argument wins,
    otherwise the ``REPRO_SIM_VECTOR`` env toggle (default on)."""
    if vector is not None:
        return bool(vector)
    return os.environ.get("REPRO_SIM_VECTOR", "1") != "0"


def vector_fallback_reason(cfg: Any, network: Any, trace_p2p: bool) -> str | None:
    """Why the run cannot take the vector fast path, or ``None`` if it can.

    The run is eligible iff it is exactly the homogeneous SPMD protocol
    the vector executor replays bit-identically — including
    ``collective_selection="auto"`` (the vector path prices every phase
    through the same memoized :class:`~repro.vmpi.algoselect.\
CollectivePolicy` the scalar path consults) and ``overlap_gradient``
    (the bucketed pipeline becomes a per-rank exposed-comm vector
    phase).  Any failing condition falls back to the per-process scalar
    scheduler; the returned slug labels the
    ``sim.vector.fallback{reason=...}`` counter
    :func:`~repro.dist.simulated.simulate_training` records so silent
    scalar-path regressions are observable (DESIGN.md §6e lists the
    same conditions as an eligibility matrix):

    * ``trace_p2p`` — per-message tracing materializes p2p spans;
    * ``fault_plan`` / ``fault_policy`` — faults and recovery are
      heterogeneous by construction;
    * ``serial_bcast`` — the serial broadcast is a per-rank chain, not
      a tree sweep;
    * ``staged_load`` — the staged relay's leader/member split is
      heterogeneous (master and parallel_io load are vectorizable);
    * ``noise_model`` — anything but :class:`~repro.bgq.kernel.CnkNoise`
      (whose ``perturb`` is the identity and draws nothing from the
      rng) makes per-rank compute charges rng-order-dependent;
    * ``segmented_control`` — ``segment_bytes < 16`` would segment the
      4/16-byte control payloads inside the tree algorithms;
    * ``small_comm`` / ``non_pow2_ranks`` — the theta fast path needs
      ``ranks > 8``, and full tree levels need a power of two;
    * ``theta_not_fast_path`` — ``theta_bytes <= segment_bytes`` makes
      theta collectives execute message-by-message;
    * ``network_model`` — only :class:`TorusNetworkModel` and
      :class:`UniformNetwork` have p2p costs pure in (same-node flag,
      hop count, nbytes), the property the class-representative cost
      tables rely on.
    """
    p = cfg.shape.ranks
    wl = cfg.workload
    if trace_p2p:
        return "trace_p2p"
    if cfg.fault_plan is not None and not cfg.fault_plan.empty:
        return "fault_plan"
    if cfg.fault_policy is not None:
        return "fault_policy"
    if cfg.bcast_algorithm != "binomial":
        return "serial_bcast"
    if cfg.load_data_mode not in ("master", "parallel_io"):
        return "staged_load"
    if type(cfg.noise) is not CnkNoise:
        return "noise_model"
    if cfg.segment_bytes < _LOSS_BYTES:
        return "segmented_control"
    if p <= 8:
        return "small_comm"
    if p & (p - 1):
        return "non_pow2_ranks"
    if wl.theta_bytes <= cfg.segment_bytes:
        return "theta_not_fast_path"
    if type(network) not in (TorusNetworkModel, UniformNetwork):
        return "network_model"
    return None


def vector_eligible(cfg: Any, network: Any, trace_p2p: bool) -> bool:
    """True iff the run is exactly the homogeneous SPMD protocol the
    vector executor replays bit-identically (the conditions — and the
    per-condition fallback slugs — live on
    :func:`vector_fallback_reason`)."""
    return vector_fallback_reason(cfg, network, trace_p2p) is None


# ------------------------------------------------------------- cost tables
def _torus_hops(dims: tuple[int, ...], a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact torus hop counts between node index arrays ``a`` and ``b``.

    Integer-only replica of ``TorusShape.coords`` + per-dimension ring
    distance; used solely to *classify* edges — the actual costs still
    come from the model's scalar calls.
    """
    total = np.zeros(a.shape, dtype=np.int64)
    rem_a = a.astype(np.int64, copy=True)
    rem_b = b.astype(np.int64, copy=True)
    for d in reversed(dims):
        ca = rem_a % d
        rem_a //= d
        cb = rem_b % d
        rem_b //= d
        diff = np.abs(ca - cb)
        total += np.minimum(diff, d - diff)
    return total


def _edge_costs(
    network: Any, src: np.ndarray, dst: np.ndarray, nbytes: Any
) -> tuple[np.ndarray, np.ndarray]:
    """Per-edge ``(transfer, wire)`` arrays via the model's own scalar calls.

    Edges are grouped into cost-equivalence classes — ``(key, nbytes)``
    where ``key`` is the torus hop count (-1 for same-node) or a single
    class on the uniform model — and one representative edge per class is
    priced with ``p2p_time``/``wire_time``.  Exact because both eligible
    models' costs depend only on the class key and the byte count.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    n = src.size
    sizes = np.broadcast_to(np.asarray(nbytes, dtype=np.int64), (n,))
    if type(network) is UniformNetwork:
        key = np.zeros(n, dtype=np.int64)  # tree edges never self-send
    else:
        rpn = network.ranks_per_node
        node_s = src // rpn
        node_d = dst // rpn
        hops = _torus_hops(network.torus.dims, node_s, node_d)
        key = np.where(node_s == node_d, np.int64(-1), hops)
    classes = np.stack([key, sizes], axis=1)
    uniq, inv = np.unique(classes, axis=0, return_inverse=True)
    first = np.empty(len(uniq), dtype=np.int64)
    first[inv[::-1]] = np.arange(n - 1, -1, -1)  # first edge of each class
    transfer = np.empty(len(uniq), dtype=np.float64)
    wire = np.empty(len(uniq), dtype=np.float64)
    for c, j in enumerate(first):
        s, d, b = int(src[j]), int(dst[j]), int(sizes[j])
        transfer[c] = network.p2p_time(s, d, b)
        wire[c] = network.wire_time(s, d, b)
    return transfer[inv], wire[inv]


# ----------------------------------------------------------------- executor
class _VectorRun:
    """Precomputed schedule + mutable clock state for one eligible run.

    ``cur[r]`` is rank ``r``'s virtual clock; ``busy_up[r]`` /
    ``busy_dn[r]`` mirror the scalar scheduler's per-``(src, dst)``
    wire-busy map for the one up-tree edge ``(r, parent(r))`` and the one
    down-tree edge ``(parent(r), r)`` each non-root rank owns.  Kernel
    operations (tree sweeps, compute charges) go through
    :attr:`backend` so the sharded runtime can farm out the block-local
    work (``repro.sim.shard``); everything observable (spans, collective
    stats, message accounting) stays on the coordinator.
    """

    def __init__(
        self,
        cfg: Any,
        plan: Any,
        network: Any,
        policy: Any,
        comm: Any,
        load_done: list[float],
    ) -> None:
        self.cfg = cfg
        self.plan = plan
        self.network = network
        self.comm = comm
        self.load_done = load_done
        self.tracer = comm.tracer

        p = self.p = cfg.shape.ranks
        wl = cfg.workload
        shape = cfg.shape
        cores, tpc, rpn = (
            shape.cores_per_rank,
            shape.threads_per_core,
            shape.ranks_per_node,
        )

        self.cur = np.zeros(p, dtype=np.float64)
        self.busy_up = np.zeros(p, dtype=np.float64)
        self.busy_dn = np.zeros(p, dtype=np.float64)

        self.levels = binomial_levels(p)
        # (transfer, wire) per level, shared by both sweep directions:
        # both models' costs are symmetric in (src, dst).
        self.cost_sets = [
            [_edge_costs(network, s, r, _SYNC_BYTES) for _, s, r in self.levels],
            [_edge_costs(network, s, r, _LOSS_BYTES) for _, s, r in self.levels],
        ]
        self.inj_sets = [
            network.injection_time(_SYNC_BYTES),
            network.injection_time(_LOSS_BYTES),
        ]

        # theta routing frozen once, exactly like _make_programs
        theta_nbytes = wl.theta_bytes
        alpha, coll_bw = collective_params(network)
        if policy is not None:
            algo, cost = policy.bcast_choice(p, theta_nbytes)
            b_algo, b_cost = str(algo), cost
            algo, cost = policy.reduce_choice(p, theta_nbytes)
            r_algo, r_cost = str(algo), cost
        else:
            b_algo = r_algo = "fixed"
            b_cost = bcast_cost(p, theta_nbytes, alpha, coll_bw)
            r_cost = reduce_cost(p, theta_nbytes, alpha, coll_bw)

        # invariant per-worker compute charges (the scalar programs hoist
        # these identically; CnkNoise.perturb is the identity)
        grad_secs = wl.per_worker_seconds("gradient", plan.grad_frames, cores, tpc, rpn)
        held_secs = wl.per_worker_seconds(
            "heldout", plan.heldout_frames, cores, tpc, rpn
        )

        # DDP-style bucketed gradient overlap: the same cost model the
        # scalar trainer builds (one exposed-comm charge per rank in
        # place of the full theta reduction), evaluated once per unique
        # per-worker gradient time and gathered back over the rank
        # vector.  The master's charge replicates the scalar master's
        # slowest-worker nominal compute.
        overlap_cost = None
        grad_algo = r_algo
        if cfg.overlap_gradient:
            layer_bytes = [
                (i * o + o) * wl.dtype_bytes for i, o in wl.geometry.layer_pairs()
            ]
            cost_fn = (
                policy.reduce_cost_fn(p)
                if policy is not None
                else fixed_reduce_cost_fn(p, network)
            )
            _bucket_plan, exposed = exposed_comm_model(
                layer_bytes, cfg.gradient_bucket_bytes, theta_nbytes, cost_fn
            )
            grad_algo = r_algo + "+overlap"
            overlap_cost = np.empty(p, dtype=np.float64)
            overlap_cost[0] = exposed(
                wl.gradient_seconds(int(plan.grad_frames.max()), cores, tpc, rpn)
            )
            uniq, inv = np.unique(grad_secs, return_inverse=True)
            overlap_cost[1:] = np.array(
                [exposed(float(g)) for g in uniq], dtype=np.float64
            )[inv]
        hf_master_secs = wl.master_vector_op_seconds(4.0)
        cg_minimize_secs = wl.master_vector_op_seconds(6.0)

        lbl_sync_master = label(COLL, "sync_weights_master")
        lbl_sync = label(COLL, "sync_weights")
        lbl_cg_bcast = label(COLL, "cg_bcast")
        lbl_cg_reduce = label(COLL, "cg_reduce")
        lbl_reduce_grad = label(COLL, "reduce_gradient")
        lbl_reduce_loss = label(COLL, "reduce_loss")
        lbl_gradient = label(COMPUTE, "gradient_loss")
        lbl_curvature = label(COMPUTE, "worker_curvature_product")
        lbl_heldout = label(COMPUTE, "heldout_loss")

        self.backend: Any = _InlineBackend(self)
        self.phases: list[Callable[[float], tuple[float, Any]]] = []
        self.phase_labels: list[str] = []
        """One label per phase (the worker-side span label), parallel to
        :attr:`phases`; the executor logs ``(label, end, straggler)``
        per phase so the critical-path pass works at phase granularity
        without leaving the fast path."""
        self.phase_log: list[tuple[str, float, int]] = []
        self.kernel_ops: list[tuple] = []
        self.n_barriers = 0
        self.n_loss = 0

        self.phases.append(self._load_phase())
        for it in range(cfg.script.n_iterations):
            self._add_barrier("bcast", b_algo, b_cost, lbl_sync_master, lbl_sync)
            self._add_compute_workers(grad_secs, lbl_gradient)
            if overlap_cost is None:
                self._add_barrier(
                    "reduce", r_algo, r_cost, lbl_reduce_grad, lbl_reduce_grad
                )
            else:
                # bucketed pipeline: the full gradient compute is already
                # charged above; the reduction leaves only each rank's
                # exposed communication
                self._add_barrier(
                    "reduce",
                    grad_algo,
                    overlap_cost,
                    lbl_reduce_grad,
                    lbl_reduce_grad,
                )
            self._add_compute_master(hf_master_secs, label(COMPUTE, "hf_master"))
            setup = wl.per_worker_seconds(
                "curvature_setup", plan.curv_frames[it], cores, tpc, rpn
            )
            product = wl.per_worker_seconds(
                "curvature_product", plan.curv_frames[it], cores, tpc, rpn
            )
            first_product = product + setup  # scalar order: product += setup
            for k in range(cfg.script.cg_iters[it]):
                self._add_barrier(
                    "bcast", b_algo, b_cost, lbl_cg_bcast, lbl_cg_bcast
                )
                self._add_compute_workers(
                    first_product if k == 0 else product, lbl_curvature
                )
                self._add_barrier(
                    "reduce", r_algo, r_cost, lbl_cg_reduce, lbl_cg_reduce
                )
                self._add_compute_master(
                    cg_minimize_secs, label(COMPUTE, "cg_minimize")
                )
            for _e in range(cfg.script.heldout_evals[it]):
                self._add_barrier(
                    "bcast", b_algo, b_cost, lbl_sync_master, lbl_sync
                )
                self._add_compute_workers(held_secs, lbl_heldout)
                self._add_loss_reduce(lbl_reduce_loss)

    # ---------------------------------------------------------- tree kernels
    def up_sweep(self, cost_idx: int, lo: int = 0, hi: int | None = None) -> None:
        """Ascending-mask reduce sweep over levels ``[lo, hi)``; each rank
        sends to its parent at the level of its lowest set bit, exactly
        the order ``_reduce_once`` executes."""
        cur, busy = self.cur, self.busy_up
        costs = self.cost_sets[cost_idx]
        inj = self.inj_sets[cost_idx]
        sl = slice(lo, hi)
        for (_m, leaves, parents), (transfer, wire) in zip(
            self.levels[sl], costs[sl]
        ):
            self._level(cur, busy, leaves, parents, leaves, transfer, wire, inj)

    def down_sweep(self, cost_idx: int, lo: int = 0, hi: int | None = None) -> None:
        """Descending-mask bcast sweep over levels ``[lo, hi)`` (indices in
        ascending-level terms; processed reversed): each parent sends to
        its children in descending-mask order, as ``_bcast_once`` does."""
        cur, busy = self.cur, self.busy_dn
        costs = self.cost_sets[cost_idx]
        inj = self.inj_sets[cost_idx]
        sl = slice(lo, hi)
        for (_m, leaves, parents), (transfer, wire) in zip(
            reversed(self.levels[sl]), reversed(costs[sl])
        ):
            self._level(cur, busy, parents, leaves, leaves, transfer, wire, inj)

    @staticmethod
    def _level(
        cur: np.ndarray,
        busy: np.ndarray,
        senders: np.ndarray,
        receivers: np.ndarray,
        edge_key: np.ndarray,
        transfer: np.ndarray,
        wire: np.ndarray,
        inj: float,
    ) -> None:
        """One tree level, replicating the scalar send path float-for-float:
        ``_delivery_delay``'s wire-busy fold, arrival as
        ``t_send + max(delay, injection)``, sender charged the injection,
        receiver resumed at ``max(clock, arrival)``."""
        t_send = cur[senders]
        start = np.maximum(busy[edge_key], t_send)
        end_wire = start + wire
        busy[edge_key] = end_wire
        delay = np.maximum(t_send + transfer, end_wire) - t_send
        arrival = t_send + np.maximum(delay, inj)
        cur[senders] = t_send + inj
        cur[receivers] = np.maximum(cur[receivers], arrival)

    # --------------------------------------------------------- phase builders
    def _op(self, op: tuple) -> tuple:
        self.kernel_ops.append(op)
        return op

    def _end(self) -> tuple[float, Any]:
        return float(self.cur.max()), None

    def _load_phase(self) -> Callable[[float], tuple[float, Any]]:
        cfg = self.cfg
        if cfg.load_data_mode == "parallel_io":
            io_secs = float(self.plan.shard_bytes.sum()) / cfg.io_aggregate_bandwidth
            lbl = label(COMPUTE, "load_data")
            self.phase_labels.append(lbl)

            def run_io(_now: float) -> tuple[float, Any]:
                cur = self.cur
                new = cur[1:] + io_secs
                d = new - cur[1:]
                cur[1:] = new
                if self.tracer is not None:
                    self.tracer.add_bulk(lbl, 1, d)
                self.load_done[0] = 0.0
                return self._end()

            return run_io

        lbl = label(P2P, "load_data")
        self.phase_labels.append(lbl)

        def run_master(_now: float) -> tuple[float, Any]:
            p = self.p
            network = self.network
            shard = self.plan.shard_bytes
            dst = np.arange(1, p, dtype=np.int64)
            src = np.zeros(p - 1, dtype=np.int64)
            uniq, inv = np.unique(shard, return_inverse=True)
            injs = np.array(
                [network.injection_time(int(b)) for b in uniq], dtype=np.float64
            )[inv]
            # the master's clock is the left fold of the injection times
            # (ctx.send yields each one); cumsum IS that left fold
            csum = np.cumsum(injs)
            t_send = np.concatenate(([0.0], csum[:-1]))
            transfer, wire = _edge_costs(network, src, dst, shard)
            end_wire = t_send + wire  # first use of every (0, w) pair
            delay = np.maximum(t_send + transfer, end_wire) - t_send
            arrival = t_send + np.maximum(delay, injs)
            cur = self.cur
            cur[0] = csum[-1]
            cur[1:] = arrival
            # the load send seeds wire-busy on (0, w); only the root's
            # tree children (power-of-two w) ever reuse that edge
            pow2 = (dst & (dst - 1)) == 0
            self.busy_dn[dst[pow2]] = end_wire[pow2]
            if self.tracer is not None:
                self.tracer.add_bulk(lbl, 0, cur.copy())  # spans start at 0.0
            self.load_done[0] = float(cur[0])
            return self._end()

        return run_master

    def _add_barrier(
        self,
        op: str,
        algo: str,
        cost: float | np.ndarray,
        lbl_master: str,
        lbl_worker: str,
    ) -> None:
        """Modeled-collective phase: binomial sync/go stub sweeps plus the
        closed-form transfer charge — a scalar (same charge on every
        rank) or a per-rank vector (the overlap pipeline's exposed-comm
        charges, zero where a rank's compute hides everything — adding
        0.0 is exactly the scalar path's skipped charge)."""
        self.n_barriers += 1
        self.phase_labels.append(lbl_worker)
        up = self._op(("up", 0))
        down = self._op(("down", 0))
        if isinstance(cost, np.ndarray):
            addc = self._op(("addv", cost)) if cost.any() else None
        else:
            addc = self._op(("add", float(cost))) if cost > 0 else None

        def run(_now: float) -> tuple[float, Any]:
            cur = self.cur
            coll = self.comm.coll_stats
            backend = self.backend
            t0 = cur.copy()
            backend.run_op(up)
            if coll is not None:
                backend.drain()
                coll.on_bulk("reduce", "binomial", cur - t0)
                t1 = cur.copy()
            backend.run_op(down)
            if coll is not None:
                backend.drain()
                coll.on_bulk("bcast", "binomial", cur - t1)
            if addc is not None:
                backend.run_op(addc)
            backend.drain()
            d = cur - t0
            if self.tracer is not None:
                if lbl_master == lbl_worker:
                    self.tracer.add_bulk(lbl_master, 0, d)
                else:
                    self.tracer.add_bulk(lbl_master, 0, d[:1])
                    self.tracer.add_bulk(lbl_worker, 1, d[1:])
            if coll is not None:
                coll.on_bulk(op, algo, d)
            return self._end()

        self.phases.append(run)

    def _add_loss_reduce(self, lbl: str) -> None:
        self.n_loss += 1
        self.phase_labels.append(lbl)
        up = self._op(("up", 1))

        def run(_now: float) -> tuple[float, Any]:
            cur = self.cur
            backend = self.backend
            t0 = cur.copy()
            backend.run_op(up)
            backend.drain()
            d = cur - t0
            if self.tracer is not None:
                self.tracer.add_bulk(lbl, 0, d)
            coll = self.comm.coll_stats
            if coll is not None:
                coll.on_bulk("reduce", "binomial", d)
            return self._end()

        self.phases.append(run)

    def _add_compute_workers(self, secs: np.ndarray, lbl: str) -> None:
        self.phase_labels.append(lbl)
        op = self._op(("cw", secs))

        def run(_now: float) -> tuple[float, Any]:
            cur = self.cur
            backend = self.backend
            old = cur[1:].copy()
            backend.run_op(op)
            backend.drain()
            d = cur[1:] - old
            if self.tracer is not None:
                self.tracer.add_bulk(lbl, 1, d)
            return self._end()

        self.phases.append(run)

    def _add_compute_master(self, secs: float, lbl: str) -> None:
        self.phase_labels.append(lbl)

        def run(_now: float) -> tuple[float, Any]:
            cur = self.cur
            c0 = cur[0]
            new = c0 + secs
            cur[0] = new
            if self.tracer is not None:
                self.tracer.add_bulk(lbl, 0, np.array([new - c0]))
            return self._end()

        self.phases.append(run)

    # --------------------------------------------------------------- run/stats
    def execute(self) -> float:
        engine = self.comm.engine
        if self.tracer is not None:
            self.tracer.register_bulk(self.comm._rank_names)
        log = self.phase_log
        cur = self.cur

        def driver():
            for fn, lbl in zip(self.phases, self.phase_labels):
                yield VectorPhase(fn)
                # phase-granular dependency edge: when the phase ended and
                # which rank's clock set that end (the straggler) — the
                # aggregate critical path the obs layer walks instead of
                # per-rank spans (which the fast path never materialises)
                log.append((lbl, float(cur.max()), int(cur.argmax())))

        engine.process(driver(), name="vector")
        end = engine.run()
        self._final_stats()
        self.comm.set_rank_finish_times(cur)
        return float(end)

    def _final_stats(self) -> None:
        """Aggregate message accounting, exactly what the scalar path would
        have counted send by send."""
        p = self.p
        edges = p - 1
        msgs = edges * (2 * self.n_barriers + self.n_loss)
        nbytes = edges * (
            _SYNC_BYTES * 2 * self.n_barriers + _LOSS_BYTES * self.n_loss
        )
        loaded = self.cfg.load_data_mode == "master"
        if loaded:
            msgs += edges
            nbytes += int(self.plan.shard_bytes.sum())
        self.comm.bulk_account(msgs, nbytes)
        stats = self.comm.comm_stats
        if stats is None:
            return
        if loaded:
            stats.on_bulk(
                np.zeros(edges, dtype=np.int64),
                np.arange(1, p, dtype=np.int64),
                self.plan.shard_bytes,
                1,
            )
        for _m, leaves, parents in self.levels:
            stats.on_bulk(leaves, parents, _SYNC_BYTES, self.n_barriers)
            stats.on_bulk(parents, leaves, _SYNC_BYTES, self.n_barriers)
            if self.n_loss:
                stats.on_bulk(leaves, parents, _LOSS_BYTES, self.n_loss)


class _InlineBackend:
    """Single-process kernel execution: ops run directly on the full arrays."""

    __slots__ = ("run",)

    def __init__(self, run: _VectorRun) -> None:
        self.run = run

    def run_op(self, op: tuple) -> None:
        kind = op[0]
        r = self.run
        if kind == "up":
            r.up_sweep(op[1])
        elif kind == "down":
            r.down_sweep(op[1])
        elif kind == "add":
            r.cur += op[1]
        elif kind == "addv":
            r.cur += op[1]
        elif kind == "cw":
            r.cur[1:] += op[1]
        else:  # pragma: no cover - schedule and executor are built together
            raise ValueError(f"unknown kernel op {op!r}")

    def drain(self) -> None:
        """No-op: inline ops complete synchronously."""


def run_vectorized(
    cfg: Any,
    plan: Any,
    network: Any,
    policy: Any,
    comm: Any,
    load_done: list[float],
    shards: int = 1,
    speculate: bool = False,
) -> tuple[float, list[tuple[str, float, int]]]:
    """Execute one eligible SPMD run on the vector fast path.

    Returns ``(virtual end time, phase log)`` where the end time equals
    ``Engine.finish_time`` and the phase log holds one
    ``(label, end, straggler_rank)`` entry per executed phase — the
    aggregate-level dependency chain the critical-path pass consumes.
    With ``shards > 1`` the block-local kernel work is partitioned
    across OS processes by :class:`repro.sim.shard.ShardPool`; results
    are bit-identical to ``shards == 1`` because every shard executes
    the same float operations on disjoint array slices.  ``speculate``
    additionally selects the pool's optimistic window protocol
    (checkpoint + rollback instead of two barriers per kernel op) —
    committed values are identical either way.
    """
    run = _VectorRun(cfg, plan, network, policy, comm, load_done)
    if shards > 1:
        from repro.sim.shard import ShardPool

        pool = ShardPool(run, shards, obs=comm.obs, speculate=speculate)
        run.backend = pool
        try:
            return run.execute(), run.phase_log
        finally:
            pool.close()
    return run.execute(), run.phase_log
