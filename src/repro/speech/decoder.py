"""Viterbi decoding and recognition-error metrics.

The paper evaluates by word-error-rate; our synthetic substrate has no
words, so the analogue is **state-sequence recognition**: decode the
most-likely HMM state path from DNN posteriors (hybrid DNN/HMM style —
posteriors scaled into pseudo-likelihoods, Viterbi over the transition
graph) and score it against the true generating path with the same
edit-distance machinery WER uses.

This closes the accuracy loop: frame error (``frame_error_count``)
measures the DNN alone, while :func:`state_error_rate` measures the
decoded sequence — the quantity sequence-discriminative training
(Table I's second criterion) actually optimizes for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.activations import log_softmax

__all__ = ["viterbi_decode", "edit_distance", "state_error_rate", "DecodeResult"]


@dataclass(frozen=True)
class DecodeResult:
    """One utterance's decode."""

    path: np.ndarray  # (frames,) best state sequence
    log_prob: float  # joint log-probability of the best path


def viterbi_decode(
    logits: np.ndarray,
    log_transitions: np.ndarray,
    log_initial: np.ndarray | None = None,
    acoustic_scale: float = 1.0,
    log_priors: np.ndarray | None = None,
) -> DecodeResult:
    """Most-likely state path under scaled DNN scores + HMM transitions.

    ``logits`` are the DNN's pre-softmax outputs for one utterance;
    hybrid decoding divides posteriors by state priors (all in log
    domain) to approximate likelihoods — pass ``log_priors`` for that,
    or leave ``None`` for uniform priors.
    """
    t_frames, n_states = logits.shape
    lt = np.asarray(log_transitions, dtype=np.float64)
    if lt.shape != (n_states, n_states):
        raise ValueError(
            f"transitions {lt.shape} incompatible with {n_states} states"
        )
    if log_initial is None:
        log_initial = np.full(n_states, -np.log(n_states))
    scores = acoustic_scale * log_softmax(np.asarray(logits, dtype=np.float64))
    if log_priors is not None:
        if log_priors.shape != (n_states,):
            raise ValueError(f"log_priors shape {log_priors.shape} invalid")
        scores = scores - acoustic_scale * log_priors[None, :]

    delta = log_initial + scores[0]
    backptr = np.empty((t_frames, n_states), dtype=np.int64)
    backptr[0] = -1
    for t in range(1, t_frames):
        cand = delta[:, None] + lt  # (prev, cur)
        backptr[t] = np.argmax(cand, axis=0)
        delta = cand[backptr[t], np.arange(n_states)] + scores[t]

    path = np.empty(t_frames, dtype=np.int64)
    path[-1] = int(np.argmax(delta))
    for t in range(t_frames - 1, 0, -1):
        path[t - 1] = backptr[t, path[t]]
    return DecodeResult(path=path, log_prob=float(delta[path[-1]]))


def edit_distance(ref: np.ndarray, hyp: np.ndarray) -> int:
    """Levenshtein distance between two symbol sequences (the WER core)."""
    ref = np.asarray(ref)
    hyp = np.asarray(hyp)
    prev = np.arange(len(hyp) + 1)
    for i, r in enumerate(ref, start=1):
        cur = np.empty(len(hyp) + 1, dtype=np.int64)
        cur[0] = i
        for j, h in enumerate(hyp, start=1):
            cur[j] = min(
                prev[j] + 1,  # deletion
                cur[j - 1] + 1,  # insertion
                prev[j - 1] + (0 if r == h else 1),  # substitution
            )
        prev = cur
    return int(prev[-1])


def _collapse_runs(states: np.ndarray) -> np.ndarray:
    """Frame path -> state *sequence* (merge self-loop dwell), the
    analogue of collapsing HMM frames into phone/word tokens."""
    states = np.asarray(states)
    if states.size == 0:
        return states
    keep = np.ones(len(states), dtype=bool)
    keep[1:] = states[1:] != states[:-1]
    return states[keep]


def state_error_rate(
    ref_states: np.ndarray, hyp_states: np.ndarray, collapse: bool = True
) -> float:
    """Edit-distance error rate between reference and decoded paths.

    With ``collapse=True`` (default) consecutive repeats merge first, so
    the metric counts *sequence* errors like WER counts word errors, not
    per-frame misalignments of dwell lengths.
    """
    ref = _collapse_runs(ref_states) if collapse else np.asarray(ref_states)
    hyp = _collapse_runs(hyp_states) if collapse else np.asarray(hyp_states)
    if ref.size == 0:
        raise ValueError("empty reference")
    return edit_distance(ref, hyp) / len(ref)
