"""Synthetic speech substrate.

Stands in for the paper's 50/400-hour corpora: an HMM-GMM generator
produces variable-length utterances with forced-alignment state targets
(:mod:`~repro.speech.hmm`), context splicing and normalization build the
DNN inputs (:mod:`~repro.speech.features`), and
:func:`~repro.speech.corpus.build_corpus` assembles hour-denominated
training sets at configurable scale.
"""

from repro.speech.corpus import (
    FRAMES_PER_HOUR,
    CorpusConfig,
    SpeechCorpus,
    build_corpus,
)
from repro.speech.decoder import (
    DecodeResult,
    edit_distance,
    state_error_rate,
    viterbi_decode,
)
from repro.speech.features import Normalizer, splice, spliced_dim
from repro.speech.hmm import HmmSampler, HmmSpec, Utterance

__all__ = [
    "DecodeResult",
    "edit_distance",
    "state_error_rate",
    "viterbi_decode",
    "FRAMES_PER_HOUR",
    "CorpusConfig",
    "SpeechCorpus",
    "build_corpus",
    "Normalizer",
    "splice",
    "spliced_dim",
    "HmmSampler",
    "HmmSpec",
    "Utterance",
]
