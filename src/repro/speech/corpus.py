"""Corpus assembly: hours of audio -> spliced, normalized training sets.

A :class:`SpeechCorpus` owns a list of synthetic utterances plus the
derived flat training arrays.  Sizing follows the paper's arithmetic: 50
hours of audio at a 10 ms frame shift is ~18 million frames ("50 hrs of
audio data amounts to roughly 18 million training samples"), i.e.
360,000 frames/hour.  A ``scale`` parameter shrinks that uniformly so
laptop-scale runs keep the corpus *shape* (utterance length
distribution, per-hour frame budget) while trimming volume; the
simulated-BG/Q harness uses scale 1.0 sizing arithmetic with stub
payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import SequenceBatchTargets, UtteranceSpan
from repro.speech.features import Normalizer, splice, spliced_dim
from repro.speech.hmm import HmmSampler, HmmSpec, Utterance

__all__ = ["FRAMES_PER_HOUR", "CorpusConfig", "SpeechCorpus", "build_corpus"]

FRAMES_PER_HOUR = 360_000
"""100 frames/second x 3600 — matches the paper's 50 h ~ 18 M frames."""


@dataclass(frozen=True)
class CorpusConfig:
    """Sizing and preprocessing knobs for corpus synthesis."""

    hours: float = 50.0
    scale: float = 1e-4
    """Fraction of real volume to materialize (1e-4 -> 50 h = 1800 frames)."""
    context: int = 4
    heldout_fraction: float = 0.1
    hmm: HmmSpec = field(default_factory=HmmSpec)
    seed: int = 0
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.hours <= 0:
            raise ValueError(f"hours must be > 0: {self.hours}")
        if not 0 < self.scale <= 1:
            raise ValueError(f"scale must be in (0,1]: {self.scale}")
        if self.context < 0:
            raise ValueError(f"context must be >= 0: {self.context}")
        if not 0 < self.heldout_fraction < 1:
            raise ValueError(
                f"heldout_fraction must be in (0,1): {self.heldout_fraction}"
            )

    @property
    def target_frames(self) -> int:
        """Materialized frame budget after scaling."""
        return max(
            self.hmm.min_length * 2,
            int(round(self.hours * FRAMES_PER_HOUR * self.scale)),
        )

    @property
    def full_scale_frames(self) -> int:
        """What the un-scaled corpus would hold (used by the simulator)."""
        return int(round(self.hours * FRAMES_PER_HOUR))

    @property
    def input_dim(self) -> int:
        return spliced_dim(self.hmm.feature_dim, self.context)


@dataclass
class SpeechCorpus:
    """Utterances plus derived flat training views."""

    config: CorpusConfig
    sampler: HmmSampler
    train_utts: list[Utterance]
    heldout_utts: list[Utterance]
    normalizer: Normalizer | None

    # -------------------------------------------------------------- counts
    @property
    def n_states(self) -> int:
        return self.config.hmm.n_states

    @property
    def train_frames(self) -> int:
        return sum(u.n_frames for u in self.train_utts)

    @property
    def heldout_frames(self) -> int:
        return sum(u.n_frames for u in self.heldout_utts)

    # ---------------------------------------------------------------- views
    def _prep(self, utt: Utterance) -> np.ndarray:
        feats = splice(utt.features, self.config.context)
        if self.normalizer is not None:
            feats = self.normalizer.apply(feats)
        return feats

    def frame_data(
        self, utts: list[Utterance] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated ``(X, labels)`` for frame-level (CE) training."""
        utts = self.train_utts if utts is None else utts
        xs = [self._prep(u) for u in utts]
        ys = [u.states for u in utts]
        return np.concatenate(xs, axis=0), np.concatenate(ys, axis=0)

    def heldout_frame_data(self) -> tuple[np.ndarray, np.ndarray]:
        return self.frame_data(self.heldout_utts)

    def sequence_data(
        self, utts: list[Utterance] | None = None
    ) -> tuple[np.ndarray, list[UtteranceSpan]]:
        """Concatenated ``(X, spans)`` for sequence (MMI) training."""
        utts = self.train_utts if utts is None else utts
        xs = []
        spans = []
        pos = 0
        for u in utts:
            xs.append(self._prep(u))
            spans.append(UtteranceSpan(pos, pos + u.n_frames, u.states))
            pos += u.n_frames
        return np.concatenate(xs, axis=0), spans

    def heldout_sequence_data(self) -> tuple[np.ndarray, list[UtteranceSpan]]:
        return self.sequence_data(self.heldout_utts)

    def sequence_targets(self, spans: list[UtteranceSpan]) -> SequenceBatchTargets:
        return SequenceBatchTargets(tuple(spans))


def build_corpus(config: CorpusConfig = CorpusConfig()) -> SpeechCorpus:
    """Synthesize a corpus to the configured frame budget.

    Utterances are drawn until the train + held-out budgets are met; the
    held-out set is utterance-disjoint from training (as in the paper,
    where the HF loss L is "computed over a held-out set").
    """
    sampler = HmmSampler(config.hmm, seed=config.seed)
    target = config.target_frames
    heldout_target = max(config.hmm.min_length, int(target * config.heldout_fraction))
    train_target = target - heldout_target

    train: list[Utterance] = []
    heldout: list[Utterance] = []
    uid = 0
    got = 0
    while got < train_target:
        u = sampler.sample_utterance(uid)
        train.append(u)
        got += u.n_frames
        uid += 1
    got = 0
    while got < heldout_target:
        u = sampler.sample_utterance(uid)
        heldout.append(u)
        got += u.n_frames
        uid += 1

    normalizer = None
    if config.normalize:
        raw = np.concatenate(
            [splice(u.features, config.context) for u in train], axis=0
        )
        normalizer = Normalizer.fit(raw)
    return SpeechCorpus(
        config=config,
        sampler=sampler,
        train_utts=train,
        heldout_utts=heldout,
        normalizer=normalizer,
    )
