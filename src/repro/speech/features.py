"""Feature post-processing: context splicing and normalization.

Speech DNN front ends feed the network a *context window* — the current
frame concatenated with +/- k neighbours — which is why the paper's
models have wide input layers.  :func:`splice` implements that (edge
frames replicate), and :class:`Normalizer` applies corpus-level
mean/variance normalization estimated once on training data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["splice", "spliced_dim", "Normalizer"]


def spliced_dim(feature_dim: int, context: int) -> int:
    """Input width after splicing +/- ``context`` frames."""
    if feature_dim < 1 or context < 0:
        raise ValueError(f"bad dims: feature_dim={feature_dim}, context={context}")
    return feature_dim * (2 * context + 1)


def splice(features: np.ndarray, context: int) -> np.ndarray:
    """Concatenate each frame with its +/- ``context`` neighbours.

    Frames past the utterance edges are replicated (standard practice),
    so output length equals input length.
    """
    if features.ndim != 2:
        raise ValueError(f"features must be (frames, dim), got {features.shape}")
    if context < 0:
        raise ValueError(f"context must be >= 0: {context}")
    if context == 0:
        return features
    t = features.shape[0]
    pieces = []
    for off in range(-context, context + 1):
        idx = np.clip(np.arange(t) + off, 0, t - 1)
        pieces.append(features[idx])
    return np.concatenate(pieces, axis=1)


@dataclass
class Normalizer:
    """Global mean/variance normalization fitted on training frames."""

    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self) -> None:
        if self.mean.shape != self.std.shape:
            raise ValueError(
                f"mean {self.mean.shape} and std {self.std.shape} disagree"
            )
        if np.any(self.std <= 0):
            raise ValueError("std must be strictly positive")

    @classmethod
    def fit(cls, frames: np.ndarray, floor: float = 1e-6) -> "Normalizer":
        """Estimate per-dimension mean/std from a frame matrix."""
        if frames.ndim != 2 or frames.shape[0] < 2:
            raise ValueError(
                f"need a (frames >= 2, dim) matrix to fit, got {frames.shape}"
            )
        mean = frames.mean(axis=0)
        std = np.maximum(frames.std(axis=0), floor)
        return cls(mean=mean, std=std)

    def apply(self, frames: np.ndarray) -> np.ndarray:
        """Standardize frames with the fitted statistics."""
        if frames.shape[-1] != self.mean.shape[0]:
            raise ValueError(
                f"feature dim {frames.shape[-1]} != fitted dim {self.mean.shape[0]}"
            )
        return (frames - self.mean) / self.std
