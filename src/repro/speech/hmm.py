"""Synthetic speech source: an HMM-GMM utterance generator.

The paper trains on 50-400 hour speech corpora with forced-alignment
context-dependent-state targets.  We cannot ship those, so this module
generates the closest synthetic equivalent that exercises identical code
paths:

* a hidden Markov chain over ``n_states`` "CD states" with self-loop-
  biased, sparsity-patterned transitions (utterances dwell in states for
  several frames, like real phones);
* Gaussian-mixture emissions per state over ``feature_dim`` dimensions
  ("log-mel-like" features), with optional temporal smoothing to mimic
  the frame-to-frame correlation of speech;
* utterance lengths drawn log-normal — the long-tailed length
  distribution is precisely what makes the paper's Section V-C load
  balancing matter, so reproducing its *shape* is load-bearing.

The true state sequence doubles as the forced alignment (frame targets
for cross-entropy) and the reference path (numerator for sequence MMI);
the transition matrix doubles as the MMI denominator graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng, spawn

__all__ = ["HmmSpec", "Utterance", "HmmSampler"]


@dataclass(frozen=True)
class Utterance:
    """One synthetic utterance: frames plus frame-level state alignment."""

    uid: int
    features: np.ndarray  # (T, feature_dim)
    states: np.ndarray  # (T,) int

    def __post_init__(self) -> None:
        if self.features.shape[0] != self.states.shape[0]:
            raise ValueError(
                f"features ({self.features.shape[0]} frames) and states "
                f"({self.states.shape[0]}) disagree"
            )
        if self.features.shape[0] == 0:
            raise ValueError("empty utterance")

    @property
    def n_frames(self) -> int:
        return int(self.features.shape[0])


@dataclass(frozen=True)
class HmmSpec:
    """Parameters of the generating HMM-GMM."""

    n_states: int = 32
    feature_dim: int = 20
    mixtures: int = 2
    self_loop: float = 0.7
    """Probability mass on the self transition (state dwell ~ 1/(1-p))."""
    out_degree: int = 4
    """Non-self successor states reachable from each state."""
    mean_scale: float = 2.0
    """Spread of state means; larger = more separable states."""
    smoothing: float = 0.3
    """AR(1) temporal smoothing coefficient on emitted features."""
    mean_length: float = 60.0
    """Mean utterance length in frames (log-normal median-ish)."""
    length_sigma: float = 0.5
    """Log-normal sigma of the length distribution (long tail)."""
    min_length: int = 8
    max_length: int = 2000

    def __post_init__(self) -> None:
        if self.n_states < 2:
            raise ValueError(f"need >= 2 states: {self.n_states}")
        if self.feature_dim < 1:
            raise ValueError(f"feature_dim must be >= 1: {self.feature_dim}")
        if self.mixtures < 1:
            raise ValueError(f"mixtures must be >= 1: {self.mixtures}")
        if not 0 <= self.self_loop < 1:
            raise ValueError(f"self_loop must be in [0,1): {self.self_loop}")
        if not 1 <= self.out_degree < self.n_states:
            raise ValueError(
                f"out_degree must be in [1, n_states): {self.out_degree}"
            )
        if not 0 <= self.smoothing < 1:
            raise ValueError(f"smoothing must be in [0,1): {self.smoothing}")
        if not 0 < self.min_length <= self.max_length:
            raise ValueError("need 0 < min_length <= max_length")


class HmmSampler:
    """Materialized HMM-GMM drawn from an :class:`HmmSpec` and a seed.

    The model parameters (transitions, mixture means/scales) are fixed by
    ``seed``; individual utterances are drawn from per-utterance derived
    streams, so utterance ``i`` is identical no matter how many workers
    generate it or in what order — corpus content is partition-invariant.
    """

    def __init__(self, spec: HmmSpec = HmmSpec(), seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        rng = spawn(seed, "hmm-params")
        s = spec.n_states
        # transitions: self-loop + uniform mass over out_degree successors
        trans = np.zeros((s, s))
        for i in range(s):
            succ = rng.choice(
                [j for j in range(s) if j != i], size=spec.out_degree, replace=False
            )
            trans[i, i] = spec.self_loop
            trans[i, succ] = (1.0 - spec.self_loop) / spec.out_degree
        self.transitions = trans
        self.initial = np.full(s, 1.0 / s)
        # GMM emissions
        self.means = rng.normal(
            0.0, spec.mean_scale, size=(s, spec.mixtures, spec.feature_dim)
        )
        self.scales = rng.uniform(
            0.5, 1.5, size=(s, spec.mixtures, spec.feature_dim)
        )
        self.mix_weights = rng.dirichlet(
            np.full(spec.mixtures, 5.0), size=s
        )

    # -------------------------------------------------------------- lengths
    def sample_length(self, rng: np.random.Generator) -> int:
        """Draw an utterance length (frames) from the clipped lognormal."""
        spec = self.spec
        mu = np.log(spec.mean_length) - 0.5 * spec.length_sigma**2
        t = int(round(float(rng.lognormal(mu, spec.length_sigma))))
        return int(np.clip(t, spec.min_length, spec.max_length))

    # ----------------------------------------------------------- utterances
    def sample_utterance(self, uid: int) -> Utterance:
        """Draw utterance ``uid`` (deterministic given the sampler seed)."""
        spec = self.spec
        rng = spawn(self.seed, "utt", uid)
        t_frames = self.sample_length(rng)
        states = np.empty(t_frames, dtype=np.int64)
        states[0] = rng.choice(spec.n_states, p=self.initial)
        for t in range(1, t_frames):
            states[t] = rng.choice(spec.n_states, p=self.transitions[states[t - 1]])
        # emissions
        comp = np.empty(t_frames, dtype=np.int64)
        for t in range(t_frames):
            comp[t] = rng.choice(spec.mixtures, p=self.mix_weights[states[t]])
        noise = rng.standard_normal((t_frames, spec.feature_dim))
        feats = self.means[states, comp] + self.scales[states, comp] * noise
        if spec.smoothing > 0:
            a = spec.smoothing
            for t in range(1, t_frames):
                feats[t] = a * feats[t - 1] + (1 - a) * feats[t]
        return Utterance(uid=uid, features=feats, states=states)

    def sample_corpus(self, n_utterances: int, first_uid: int = 0) -> list[Utterance]:
        """Draw a block of utterances."""
        if n_utterances < 1:
            raise ValueError(f"need >= 1 utterance: {n_utterances}")
        return [self.sample_utterance(first_uid + i) for i in range(n_utterances)]

    # --------------------------------------------------------------- graphs
    def log_transitions(self, floor: float = 1e-10) -> np.ndarray:
        """Log-domain transition matrix for the MMI denominator graph."""
        return np.log(np.maximum(self.transitions, floor))

    def log_initial(self, floor: float = 1e-10) -> np.ndarray:
        return np.log(np.maximum(self.initial, floor))
