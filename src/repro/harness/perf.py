"""Simulator performance benchmarks — the ``repro perf`` harness.

The DES engine + virtual-MPI layer execute every figure of the
reproduction at the paper's true scale (1024-8192 ranks), so simulator
wall-clock *is* the cost of the benchmark suite.  This module times the
hot paths the engine overhaul targets and emits ``BENCH_sim_vmpi.json``
so each PR inherits the previous one's numbers as a regression baseline.

Benchmarks
----------
micro
    ``timeout_storm`` — pure engine: heap + ready-deque churn with no
    message traffic; ``p2p_ping_ring`` — send/recv matching through the
    indexed mailboxes; ``bcast_fanout`` — binomial-tree fan-out, the
    collective building block.
macro
    ``simulate_training`` at 1024 and 4096 ranks with the standard
    50-hour workload — the configuration the ≥3× speedup acceptance
    criterion is measured on.

Protocol
--------
Each benchmark runs ``repeats`` times and reports every wall time plus
the **min** (the standard estimator for intrinsic cost under scheduler
noise).  The collector is disabled inside the timed region — the
simulator allocates millions of short-lived tuples, and generational GC
sweeps otherwise dominate variance (collection runs between repeats
instead).  Every benchmark also records a *virtual* invariant (finish
time, message count) so a perf run doubles as a determinism check: the
numbers must be bit-identical across engine changes.

Each macro shape is additionally timed with a
:class:`~repro.obs.metrics.MetricsRegistry` attached (``obs_best_s`` /
``obs_walls_s`` plus a ``metrics`` block of event counts and peak queue
depths).  The plain and instrumented runs are interleaved round-robin
and the overhead is published as ``obs_ratio`` — the ratio of the two
min-over-rounds walls, the estimator least contaminated by scheduler
noise (which only ever adds time).  The instrumented run must reproduce the
uninstrumented virtual finish time exactly — observability is passive —
and the perf suite bounds ``obs_ratio`` at 5 %.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path
from typing import Any, Callable, Generator

__all__ = [
    "run_perf",
    "write_bench_json",
    "bench_timeout_storm",
    "bench_ping_ring",
    "bench_bcast_fanout",
    "bench_collectives",
    "bench_macro",
    "bench_macro_obs",
    "registry_metrics_block",
    "dump_obs_metrics",
    "BENCH_FILENAME",
]

BENCH_FILENAME = "BENCH_sim_vmpi.json"

MACRO_SHAPES = ("1024-4-16", "4096-4-16")
LARGE_MACRO_SHAPES = ("16384-4-16", "65536-4-16", "262144-4-16")
"""Vector-fast-path scale points: only reachable in reasonable wall time
because the SPMD executor replays whole phases as array ops."""
QUICK_MACRO_SHAPES = ("256-4-16",)

OBS_INTERLEAVE_MAX_RANKS = 16384
"""Largest macro shape timed with the obs-attached interleave; beyond it
the plain run alone is timed (the obs overhead estimate is already
established on the smaller shapes, and per-rank metric materialization
at 65k+ ranks would dominate the measurement)."""


# --------------------------------------------------------------------- micro
def bench_timeout_storm(procs: int = 512, timeouts: int = 64) -> dict[str, Any]:
    """Engine-only event churn: ``procs`` generators each sleep through
    ``timeouts`` staggered delays (a third of them zero-delay, to
    exercise the ready-deque fast path)."""
    from repro.sim.engine import Engine

    def sleeper(i: int) -> Generator:
        for j in range(timeouts):
            yield float((i * 7 + j * 13) % 3) * 1e-6

    eng = Engine()
    for i in range(procs):
        eng.process(sleeper(i), name=f"p{i}")
    t = eng.run()
    return {"virtual_finish": t, "events": procs * timeouts}


def bench_ping_ring(ranks: int = 256, rounds: int = 32) -> dict[str, Any]:
    """p2p matching pressure: every rank sends around a ring and receives
    from its predecessor, ``rounds`` times — one exact-match recv per
    message through the indexed mailboxes."""
    from repro.bgq.network import TorusNetworkModel
    from repro.vmpi.comm import VComm
    from repro.vmpi.costmodel import PayloadStub

    comm = VComm(
        ranks,
        network=TorusNetworkModel(nodes=ranks // 4, ranks_per_node=4),
        trace_p2p=False,
    )
    payload = PayloadStub(1024, "ping")

    def program(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        for r in range(rounds):
            yield from ctx.send(right, payload, tag=r)
            yield from ctx.recv(source=left, tag=r)

    t, _ = comm.run(program)
    return {
        "virtual_finish": t,
        "messages": comm.total_sends,
        "bytes": comm.total_bytes,
    }


def bench_bcast_fanout(ranks: int = 256, rounds: int = 16) -> dict[str, Any]:
    """Binomial-tree fan-out: ``rounds`` broadcasts from rank 0 over the
    full communicator — log-depth waves of send/recv pairs."""
    from repro.bgq.network import TorusNetworkModel
    from repro.vmpi.collectives import bcast
    from repro.vmpi.comm import VComm
    from repro.vmpi.costmodel import PayloadStub

    comm = VComm(
        ranks,
        network=TorusNetworkModel(nodes=ranks // 4, ranks_per_node=4),
        trace_p2p=False,
    )
    payload = PayloadStub(4096, "weights")

    def program(ctx):
        for _ in range(rounds):
            yield from bcast(ctx, payload if ctx.rank == 0 else None, root=0)

    t, _ = comm.run(program)
    return {
        "virtual_finish": t,
        "messages": comm.total_sends,
        "bytes": comm.total_bytes,
    }


# --------------------------------------------------------------------- macro
def bench_macro(
    shape: str = "4096-4-16",
    obs: Any | None = None,
    vector: bool | None = None,
    shards: int = 1,
    speculate: bool = False,
    auto_overlap: bool = False,
) -> dict[str, Any]:
    """One full simulated training run — the acceptance-criterion
    configuration (one outer iteration standing for 30).  ``obs`` is an
    optional :class:`~repro.obs.metrics.MetricsRegistry` to attach;
    ``vector``/``shards``/``speculate`` select the SPMD fast path /
    sharded engine / optimistic shard windows exactly as on
    :func:`~repro.dist.simulated.simulate_training` (the virtual
    invariants are identical on every path — the reported ``path``
    names which executor produced them).  ``auto_overlap`` switches the
    config to ``collective_selection="auto"`` with the bucketed
    gradient-overlap pipeline — the paper-configuration macro leg."""
    from repro.bgq import RunShape
    from repro.dist import IterationScript, SimJobConfig, simulate_training
    from repro.harness.scaling import default_workload

    cfg = SimJobConfig(
        shape=RunShape.parse(shape),
        workload=default_workload(50.0),
        script=IterationScript((10,), (3,), represented_iterations=30),
        seed=7,
        **(
            {"collective_selection": "auto", "overlap_gradient": True}
            if auto_overlap
            else {}
        ),
    )
    res = simulate_training(
        cfg, obs=obs, vector=vector, shards=shards, speculate=speculate
    )
    return {
        "virtual_finish": res.load_data_seconds + res.iteration_seconds,
        "messages": res.total_messages,
        "path": res.execution_path,
    }


def bench_collectives(spec: str = "1024-4-16", hours: float = 2.0) -> dict[str, Any]:
    """Collectives sweep: the algorithm-selection crossover table plus
    the bucketed-overlap ablation on a large-payload gradient phase.

    The virtual outputs (gradsync seconds, selected algorithms) double
    as determinism invariants, and the committed ``win_vs_binomial`` is
    the evidence behind the PR's >= 20 % acceptance criterion.
    """
    from repro.harness.scaling import collective_crossover, run_overlap_ablation

    ab = run_overlap_ablation(spec, hours=hours)
    return {
        "spec": spec,
        "gradsync_binomial_s": ab.binomial_seconds,
        "gradsync_serial_s": ab.serial_seconds,
        "gradsync_overlap_s": ab.overlap_seconds,
        "win_vs_binomial": ab.win_vs_binomial,
        "win_vs_serial": ab.win_vs_serial,
        "crossover": [
            {
                "nbytes": row["nbytes"],
                "bcast": row["bcast"]["algo"],  # type: ignore[index]
                "allreduce": row["allreduce"]["algo"],  # type: ignore[index]
                "reduce": row["reduce"]["algo"],  # type: ignore[index]
            }
            for row in collective_crossover(spec)
        ],
    }


def shard_metrics_block(reg: Any) -> dict[str, Any]:
    """Condense the ``sim.shard.*`` surface of an obs snapshot into the
    BENCH json ``shard_metrics`` block (stalls, rollbacks, speculation
    depth).  Unlike the virtual invariants these are *wall-clock
    sensitive* on the speculative path — rollback counts depend on OS
    scheduling — so they are reported, never baseline-compared."""
    out: dict[str, Any] = {}
    for rec in reg.snapshot():
        name = rec["metric"]
        if not name.startswith("sim.shard."):
            continue
        key = name[len("sim.shard.") :]
        if name == "sim.shard.kernel_ops":
            out["kernel_ops"] = out.get("kernel_ops", 0) + rec["value"]
        elif "peak" in rec:
            out[key] = rec["peak"]
        else:
            out[key] = rec["value"]
    return out


def registry_metrics_block(reg: Any) -> dict[str, Any]:
    """Condense an obs snapshot into the BENCH json ``metrics`` block."""
    events: dict[str, int] = {}
    block: dict[str, Any] = {}
    for rec in reg.snapshot():
        name = rec["metric"]
        if name == "sim.events":
            events[rec["labels"]["kind"]] = rec["value"]
        elif name == "sim.heap_depth":
            block["peak_heap_depth"] = rec["peak"]
        elif name == "sim.ready_depth":
            block["peak_ready_depth"] = rec["peak"]
        elif name == "comm.outstanding_hwm":
            block["outstanding_hwm"] = rec["value"]
    block["events"] = events
    block["events_total"] = sum(events[k] for k in sorted(events))
    return block


def bench_macro_obs(
    shape: str,
    registry_sink: list[Any] | None = None,
    shards: int = 1,
    vector: bool | None = None,
    speculate: bool = False,
    auto_overlap: bool = False,
) -> dict[str, Any]:
    """:func:`bench_macro` with a fresh metrics registry attached — the
    instrumented engine loop and comm hooks (the observability overhead
    the perf suite bounds at 5 %).

    Only the *simulation* runs here: snapshot folding is deliberately
    excluded so ``_time(bench_macro_obs)`` measures hot-path overhead,
    not the one-time export cost.  ``registry_sink``, if given, receives
    the attached registry (via ``append``) for post-timing inspection.
    ``vector``/``shards`` pass through to :func:`bench_macro`, so the
    overhead gate covers the SPMD fast path and the sharded engine too.
    """
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    result = bench_macro(
        shape,
        obs=reg,
        vector=vector,
        shards=shards,
        speculate=speculate,
        auto_overlap=auto_overlap,
    )
    if registry_sink is not None:
        registry_sink.append(reg)
    return result


def dump_obs_metrics(path: str | Path, quick: bool = False) -> Path:
    """One obs-attached macro run -> JSONL metrics dump at ``path``
    (the ``repro perf --obs`` backend)."""
    from repro.obs import MetricsRegistry, write_metrics_jsonl

    shape = (QUICK_MACRO_SHAPES if quick else MACRO_SHAPES)[0]
    reg = MetricsRegistry()
    result = bench_macro(shape, obs=reg)
    return write_metrics_jsonl(
        reg, path, extra_records=[{"record": "run", "shape": shape, **result}]
    )


# ------------------------------------------------------------------- driver
def _time_interleaved(
    fns: list[Callable[[], dict[str, Any]]], repeats: int
) -> list[dict[str, Any]]:
    """Time several benchmarks round-robin (A, B, A, B, ...).

    Interleaving is what makes *ratios* between the entries meaningful:
    slow drift in machine speed (thermal throttling, noisy neighbours)
    hits every entry of a round about equally instead of biasing
    whichever ran in the faster block.  The min-over-repeats estimator
    is then taken per entry as usual.
    """
    walls: list[list[float]] = [[] for _ in fns]
    metas: list[dict[str, Any]] = [{} for _ in fns]
    was_enabled = gc.isenabled()
    try:
        gc.disable()
        for _ in range(repeats):
            for j, fn in enumerate(fns):
                t0 = time.perf_counter()
                result = fn()
                walls[j].append(time.perf_counter() - t0)
                if metas[j] and result != metas[j]:
                    raise AssertionError(
                        f"benchmark is not deterministic: {result} != {metas[j]}"
                    )
                metas[j] = result
                gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return [
        {"walls_s": w, "best_s": min(w), **m} for w, m in zip(walls, metas)
    ]


def _time(fn: Callable[[], dict[str, Any]], repeats: int) -> dict[str, Any]:
    return _time_interleaved([fn], repeats)[0]


def run_perf(
    repeats: int = 3,
    quick: bool = False,
    ranks: list[int] | None = None,
    shards: int = 1,
    speculate: bool = False,
) -> dict[str, Any]:
    """Run every benchmark; returns the ``BENCH_sim_vmpi.json`` payload.

    ``quick`` shrinks the workloads for smoke-testing the harness itself
    (CI); published baselines use the default sizes.  ``ranks`` replaces
    the macro shape list with ``<r>-4-16`` entries (the ``repro perf
    --ranks 16384,65536,262144`` sweep); ``shards`` runs the macro legs
    on the sharded engine and ``speculate`` switches its shard windows
    to the optimistic rollback protocol (virtual invariants are
    unaffected either way; sharded legs additionally report a
    ``shard_metrics`` block with the window stall / rollback counts).
    Every macro shape also gets an ``<shape>+auto+overlap`` leg — the
    paper configuration (auto-selected collectives + bucketed gradient
    overlap) timed on the same executor.
    """
    if quick:
        micro = {
            "timeout_storm": lambda: bench_timeout_storm(procs=64, timeouts=16),
            "p2p_ping_ring": lambda: bench_ping_ring(ranks=32, rounds=4),
            "bcast_fanout": lambda: bench_bcast_fanout(ranks=32, rounds=4),
        }
        shapes = QUICK_MACRO_SHAPES
        coll_spec = QUICK_MACRO_SHAPES[0]
    else:
        micro = {
            "timeout_storm": bench_timeout_storm,
            "p2p_ping_ring": bench_ping_ring,
            "bcast_fanout": bench_bcast_fanout,
        }
        shapes = MACRO_SHAPES + LARGE_MACRO_SHAPES
        coll_spec = MACRO_SHAPES[0]
    if ranks:
        shapes = tuple(f"{r}-4-16" for r in ranks)
    payload: dict[str, Any] = {
        "benchmark": "sim_vmpi",
        "protocol": {
            "repeats": repeats,
            "timer": "time.perf_counter",
            "gc": "disabled during timed region",
            "estimator": "min over repeats (best_s)",
            "shards": shards,
            "speculate": speculate,
        },
        "micro": {},
        "macro": {},
        "collectives": {},
    }
    for name, fn in micro.items():
        payload["micro"][name] = _time(fn, repeats)
    payload["collectives"]["sweep"] = _time(
        lambda: bench_collectives(coll_spec), repeats
    )
    for shape in shapes:
        legs = {shape: False, f"{shape}+auto+overlap": True}
        for name, auto_overlap in legs.items():
            if int(shape.split("-")[0]) > OBS_INTERLEAVE_MAX_RANKS:
                entry = _time(
                    lambda s=shape, ao=auto_overlap: bench_macro(
                        s, shards=shards, speculate=speculate, auto_overlap=ao
                    ),
                    repeats,
                )
                if shards > 1:
                    # one untimed obs-attached run just for the shard
                    # window telemetry (stalls / rollbacks) — these
                    # shapes skip the timed obs interleave by design
                    sink: list[Any] = []
                    bench_macro_obs(
                        shape,
                        sink,
                        shards=shards,
                        speculate=speculate,
                        auto_overlap=auto_overlap,
                    )
                    entry["shard_metrics"] = shard_metrics_block(sink[-1])
                payload["macro"][name] = entry
                continue
            sink = []
            entry, obs_entry = _time_interleaved(
                [
                    lambda s=shape, ao=auto_overlap: bench_macro(
                        s, shards=shards, speculate=speculate, auto_overlap=ao
                    ),
                    lambda s=shape, ao=auto_overlap: bench_macro_obs(
                        s, sink, shards=shards, speculate=speculate, auto_overlap=ao
                    ),
                ],
                repeats,
            )
            if obs_entry["virtual_finish"] != entry["virtual_finish"]:
                raise AssertionError(
                    f"obs-attached run changed the timeline for {name}: "
                    f"{obs_entry['virtual_finish']!r} != "
                    f"{entry['virtual_finish']!r}"
                )
            entry["obs_best_s"] = obs_entry["best_s"]
            entry["obs_walls_s"] = obs_entry["walls_s"]
            # Overhead estimate: ratio of the two min-over-rounds walls.
            # Scheduler/frequency noise only ever *adds* time, so each
            # leg's minimum converges down onto its intrinsic cost as
            # rounds accumulate, and interleaving gives both legs equal
            # exposure to the machine's fast/slow epochs.  (Per-round
            # pairwise ratios are NOT robust here: one noise spike inside
            # a single leg of a round swings that round's ratio by tens
            # of percent.)
            entry["obs_ratio"] = obs_entry["best_s"] / entry["best_s"]
            entry["metrics"] = registry_metrics_block(sink[-1])
            if shards > 1:
                entry["shard_metrics"] = shard_metrics_block(sink[-1])
            payload["macro"][name] = entry
    payload["shard_windows"] = _shard_window_report(shapes)
    from repro.harness.serving import serve_payload

    # pure virtual-time sweep (no wall clocks), committed bit-for-bit —
    # benchmarks/test_serve_saturation.py compares it exactly, unlike
    # the ratio-gated micro/macro sections
    payload["serve"] = serve_payload(quick=quick)
    return payload


SHARD_WINDOW_SHARDS = 4


def _shard_window_report(shapes: tuple[str, ...]) -> dict[str, Any]:
    """Conservative-vs-speculative shard-window telemetry at the largest
    macro shape (the ISSUE's 262k evidence: the optimistic protocol
    drops ``window_stalls`` to the actual rollback count with zero
    result divergence).

    Untimed single runs — the numbers of interest are the window
    counters, not wall clock.  Rollback counts on the speculative path
    depend on OS scheduling, so this section is reported in the BENCH
    json but never baseline-compared (the baseline loops only walk the
    ``micro``/``macro`` sections).
    """
    from repro.sim.shard import ShardPool

    shape = max(shapes, key=lambda s: int(s.split("-")[0]))
    if not ShardPool.supported() or int(shape.split("-")[0]) < 4 * SHARD_WINDOW_SHARDS:
        return {"skipped": "fork unavailable or shape too small"}
    report: dict[str, Any] = {"shape": shape, "shards": SHARD_WINDOW_SHARDS}
    for mode, speculate in (("conservative", False), ("speculative", True)):
        sink: list[Any] = []
        result = bench_macro_obs(
            shape, sink, shards=SHARD_WINDOW_SHARDS, speculate=speculate
        )
        report[mode] = {**result, "shard_metrics": shard_metrics_block(sink[-1])}
    if report["speculative"]["virtual_finish"] != report["conservative"]["virtual_finish"]:
        raise AssertionError(
            "speculative shard windows diverged from the conservative "
            f"protocol at {shape}: "
            f"{report['speculative']['virtual_finish']!r} != "
            f"{report['conservative']['virtual_finish']!r}"
        )
    return report


def write_bench_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Write the benchmark payload as stable, indented JSON."""
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def render_perf_text(payload: dict[str, Any]) -> str:
    """Render the benchmark payload as an aligned text table."""
    lines = ["sim/vmpi perf (best of repeats, seconds):"]
    for section in ("micro", "macro", "collectives"):
        for name, r in payload.get(section, {}).items():
            if "win_vs_binomial" in r:
                lines.append(
                    f"  {section}/{name} ({r['spec']}): {r['best_s']:.3f}  "
                    f"[gradsync {r['gradsync_binomial_s']:.3f}s -> "
                    f"{r['gradsync_overlap_s']:.3f}s, "
                    f"win {100 * r['win_vs_binomial']:.1f}% vs binomial, "
                    f"{100 * r['win_vs_serial']:.1f}% vs serial]"
                )
                continue
            walls = ", ".join(f"{w:.3f}" for w in r["walls_s"])
            extra = ""
            if "virtual_finish" in r:
                extra = f"  [virtual_finish={r['virtual_finish']!r}"
                if "messages" in r:
                    extra += f", messages={r['messages']}"
                if "path" in r:
                    extra += f", path={r['path']}"
                extra += "]"
            lines.append(f"  {section}/{name}: {r['best_s']:.3f}  ({walls}){extra}")
            if "shard_metrics" in r:
                sm = r["shard_metrics"]
                parts = [
                    f"{k}={sm[k]:g}"
                    for k in (
                        "window_stalls",
                        "rollbacks",
                        "speculated_windows",
                        "commit_depth",
                    )
                    if k in sm
                ]
                lines.append(f"    shard windows: {', '.join(parts)}")
            if "obs_best_s" in r:
                ratio = r.get(
                    "obs_ratio",
                    r["obs_best_s"] / r["best_s"] if r["best_s"] else float("inf"),
                )
                lines.append(
                    f"    with obs: {r['obs_best_s']:.3f}  ({ratio:.2f}x, "
                    f"events={r['metrics']['events_total']}, "
                    f"peak_heap={r['metrics']['peak_heap_depth']:g})"
                )
    sw = payload.get("shard_windows")
    if sw and "skipped" not in sw:
        lines.append(f"shard windows ({sw['shape']}, shards={sw['shards']}):")
        for mode in ("conservative", "speculative"):
            r = sw[mode]
            sm = r["shard_metrics"]
            parts = [
                f"{k}={sm[k]:g}"
                for k in (
                    "window_stalls",
                    "rollbacks",
                    "speculated_windows",
                    "commit_depth",
                )
                if k in sm
            ]
            lines.append(f"  {mode} (path={r['path']}): {', '.join(parts)}")
    serve = payload.get("serve")
    if serve:
        lines.append(
            f"serve saturation ({serve['replicas']} replicas, "
            f"capacity {serve['capacity_rps']:.2f} rps):"
        )
        for row in serve["saturation"]:
            lines.append(
                f"  load {row['load']:.2f}: {row['completed']} done, "
                f"{row['dropped']} drop, {row['timed_out']} t/o, "
                f"thru {row['throughput_rps']:.2f} rps, "
                f"p50 {1e3 * row['p50_s']:.0f} ms, "
                f"p99 {1e3 * row['p99_s']:.0f} ms, "
                f"p99.9 {1e3 * row['p999_s']:.0f} ms"
            )
    return "\n".join(lines)
