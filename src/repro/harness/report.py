"""Text renderers that print the paper's tables and figure series.

Every benchmark ends by printing one of these blocks so the regenerated
rows/series can be eyeballed against the paper directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.bgq.cycles import CycleCategories

__all__ = ["render_table", "render_series", "render_cycles", "render_mpi_split"]


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError(
                f"row has {len(r)} cells for {len(headers)} headers"
            )
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_series(
    labels: Sequence[str], values: Sequence[float], title: str = "", unit: str = ""
) -> str:
    """A labeled bar series (one Figure-1-style panel)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    vmax = max(values) if values else 1.0
    lines = [title] if title else []
    width = max(len(l) for l in labels) if labels else 0
    for l, v in zip(labels, values):
        bar = "#" * max(1, int(40 * v / vmax)) if vmax > 0 else ""
        lines.append(f"{l.ljust(width)}  {v:10.3f}{unit}  {bar}")
    return "\n".join(lines)


def render_cycles(
    per_function: Mapping[str, CycleCategories], title: str = ""
) -> str:
    """A Figure 2/3-style per-function cycle-category table."""
    rows = []
    for fn, c in sorted(per_function.items(), key=lambda kv: -kv[1].total):
        rows.append(
            [
                fn,
                f"{c.committed:.3e}",
                f"{c.iu_empty:.3e}",
                f"{c.axu_dep_stall:.3e}",
                f"{c.fxu_dep_stall:.3e}",
                f"{c.total:.3e}",
            ]
        )
    return render_table(
        ["function", "committed", "IU_empty", "AXU_dep", "FXU_dep", "total"],
        rows,
        title=title,
    )


def render_mpi_split(
    collective: Mapping[str, float], p2p: Mapping[str, float], title: str = ""
) -> str:
    """A Figure 4/5-style per-function collective/p2p seconds table."""
    fns = sorted(set(collective) | set(p2p))
    rows = [
        [fn, f"{collective.get(fn, 0.0):.3f}", f"{p2p.get(fn, 0.0):.3f}"]
        for fn in fns
    ]
    return render_table(["function", "collective_s", "p2p_s"], rows, title=title)


def _fmt(c: object) -> str:
    if isinstance(c, float):
        return f"{c:.3f}"
    return str(c)
