"""Serving sweeps: saturation curve and the batching tradeoff.

Two drivers over :func:`~repro.serve.scenario.simulate_serving`:

* :func:`run_saturation_sweep` holds the cluster fixed and walks the
  offered load across the analytic capacity — the classic hockey-stick:
  p50 stays near the service time until ~85 % capacity, p99 bends first
  (the *knee* the committed baseline asserts on), and past 100 % the
  queue fills, latency is timeout-bounded, and drops/timeouts absorb
  the overload.
* :func:`run_batching_tradeoff` holds the load fixed and walks the
  dynamic-batching knobs (``max_batch`` / ``max_wait_ms``) — bigger
  batches buy GEMM efficiency (throughput) at the price of batching
  delay on every request.

Everything downstream of a fixed seed is bit-deterministic, so the
sweep's numbers are committed verbatim to ``BENCH_sim_vmpi.json`` and
compared exactly by ``benchmarks/test_serve_saturation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.serve import (
    ArrivalSpec,
    BatchPolicy,
    DecodeCostModel,
    ServeConfig,
    ServeResult,
    simulate_serving,
)

__all__ = [
    "DEFAULT_SWEEP_LOADS",
    "SweepPoint",
    "capacity_rps",
    "run_batching_tradeoff",
    "run_saturation_sweep",
    "render_batching",
    "render_saturation",
    "serve_payload",
]

DEFAULT_SWEEP_LOADS = (0.3, 0.5, 0.7, 0.85, 0.95, 1.05, 1.2)
"""Offered load as a fraction of analytic capacity: three healthy
points, the knee region, and two overload points."""


def capacity_rps(
    replicas: int,
    batch: BatchPolicy | None = None,
    arrivals: ArrivalSpec | None = None,
    cost: DecodeCostModel | None = None,
) -> float:
    """Analytic peak throughput: full batches on every replica.

    The sweep's load axis is normalized by this, so "load 1.05" means
    5 % past the best the cluster could do with perfect batching —
    real achieved throughput saturates slightly below it because
    batches close partially filled.
    """
    batch = batch if batch is not None else BatchPolicy()
    arrivals = arrivals if arrivals is not None else ArrivalSpec()
    cost = cost if cost is not None else DecodeCostModel()
    mean_frames = (arrivals.min_frames + arrivals.max_frames) / 2.0
    return replicas * cost.service_rate(batch.max_batch, mean_frames)


@dataclass(frozen=True)
class SweepPoint:
    """One sweep cell: the knob setting plus the run's outcome."""

    load: float
    offered_rps: float
    max_batch: int
    max_wait_ms: float
    result: ServeResult

    def row(self) -> dict[str, Any]:
        """The committed-baseline record for this point (all fields
        bit-deterministic for a fixed seed)."""
        r = self.result
        return {
            "load": self.load,
            "offered_rps": self.offered_rps,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "generated": r.generated,
            "completed": r.completed,
            "dropped": r.dropped,
            "timed_out": r.timed_out,
            "failed": r.failed,
            "throughput_rps": r.throughput_rps,
            "mean_batch": r.mean_batch,
            "depth_peak": r.depth_peak,
            "p50_s": r.p50_s,
            "p99_s": r.p99_s,
            "p999_s": r.p999_s,
        }


def _base_config(
    replicas: int, rate: float, horizon_s: float, seed: int, **overrides: Any
) -> ServeConfig:
    return ServeConfig(
        replicas=replicas,
        arrivals=ArrivalSpec(rate=rate),
        horizon_s=horizon_s,
        seed=seed,
        **overrides,
    )


def run_saturation_sweep(
    replicas: int = 8,
    loads: Sequence[float] = DEFAULT_SWEEP_LOADS,
    horizon_s: float = 30.0,
    seed: int = 0,
    batch: BatchPolicy | None = None,
    quick: bool = False,
) -> list[SweepPoint]:
    """Walk offered load across capacity at a fixed cluster size.

    ``quick`` shrinks the cluster and horizon for smoke tests (seconds
    of wall time); quick numbers are *not* comparable to the committed
    baseline.
    """
    batch = batch if batch is not None else BatchPolicy()
    if quick:
        replicas = min(replicas, 4)
        horizon_s = min(horizon_s, 8.0)
        loads = (0.3, 0.7, 0.95, 1.2)
    cap = capacity_rps(replicas, batch)
    points = []
    for load in loads:
        rate = load * cap
        cfg = _base_config(replicas, rate, horizon_s, seed, batch=batch)
        points.append(
            SweepPoint(
                load=load,
                offered_rps=rate,
                max_batch=batch.max_batch,
                max_wait_ms=batch.max_wait_ms,
                result=simulate_serving(cfg),
            )
        )
    return points


def run_batching_tradeoff(
    replicas: int = 8,
    load: float = 0.85,
    max_batches: Sequence[int] = (1, 4, 8, 16),
    max_waits_ms: Sequence[float] = (5.0, 20.0, 80.0),
    horizon_s: float = 30.0,
    seed: int = 0,
    quick: bool = False,
) -> list[SweepPoint]:
    """Walk the dynamic-batching grid at fixed offered load.

    The offered rate is anchored to capacity at the *largest* batch
    setting so every cell sees identical traffic — smaller ``max_batch``
    cells are therefore progressively overloaded, which is the point:
    the grid shows where batching stops being a latency tax and starts
    being the thing keeping the cluster alive.
    """
    if quick:
        replicas = min(replicas, 4)
        horizon_s = min(horizon_s, 8.0)
        max_batches = tuple(max_batches)[:2]
        max_waits_ms = tuple(max_waits_ms)[:2]
    anchor = BatchPolicy(max_batch=max(max_batches), max_wait_ms=min(max_waits_ms))
    rate = load * capacity_rps(replicas, anchor)
    points = []
    for mb in max_batches:
        for mw in max_waits_ms:
            policy = BatchPolicy(max_batch=mb, max_wait_ms=mw)
            cfg = _base_config(replicas, rate, horizon_s, seed, batch=policy)
            points.append(
                SweepPoint(
                    load=load,
                    offered_rps=rate,
                    max_batch=mb,
                    max_wait_ms=mw,
                    result=simulate_serving(cfg),
                )
            )
    return points


def render_saturation(points: list[SweepPoint]) -> str:
    """Text table of the saturation sweep (the ``repro perf --serve``
    output)."""
    header = (
        f"{'load':>6} {'rps':>7} {'done':>6} {'drop':>5} {'t/o':>5} "
        f"{'thru':>7} {'batch':>6} {'p50 ms':>8} {'p99 ms':>8} {'p99.9 ms':>9}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        r = p.result
        lines.append(
            f"{p.load:>6.2f} {p.offered_rps:>7.2f} {r.completed:>6d} "
            f"{r.dropped:>5d} {r.timed_out:>5d} {r.throughput_rps:>7.2f} "
            f"{r.mean_batch:>6.2f} {1e3 * r.p50_s:>8.1f} "
            f"{1e3 * r.p99_s:>8.1f} {1e3 * r.p999_s:>9.1f}"
        )
    return "\n".join(lines)


def render_batching(points: list[SweepPoint]) -> str:
    """Text table of the batching-tradeoff grid."""
    header = (
        f"{'max_b':>6} {'wait ms':>8} {'done':>6} {'drop':>5} {'t/o':>5} "
        f"{'thru':>7} {'batch':>6} {'p50 ms':>8} {'p99 ms':>8}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        r = p.result
        lines.append(
            f"{p.max_batch:>6d} {p.max_wait_ms:>8.1f} {r.completed:>6d} "
            f"{r.dropped:>5d} {r.timed_out:>5d} {r.throughput_rps:>7.2f} "
            f"{r.mean_batch:>6.2f} {1e3 * r.p50_s:>8.1f} {1e3 * r.p99_s:>8.1f}"
        )
    return "\n".join(lines)


def serve_payload(quick: bool = False, seed: int = 0) -> dict[str, Any]:
    """The ``serve`` section of ``BENCH_sim_vmpi.json``.

    Pure virtual-time results — no wall clocks anywhere — so the
    committed section is compared **bit-for-bit** by
    ``benchmarks/test_serve_saturation.py`` (unlike the wall-clock
    micro/macro sections, which get ratio tolerances).
    """
    replicas = 4 if quick else 8
    sat = run_saturation_sweep(replicas=replicas, seed=seed, quick=quick)
    trade = run_batching_tradeoff(replicas=replicas, seed=seed, quick=quick)
    return {
        "replicas": replicas,
        "seed": seed,
        "quick": quick,
        "capacity_rps": capacity_rps(replicas),
        "saturation": [p.row() for p in sat],
        "batching": [p.row() for p in trade],
    }
