"""Export regenerated figure/table data to JSON and CSV.

Benchmarks print human-readable tables; downstream plotting (or diffing
against a stored baseline) wants structured files.  These helpers write
one JSON document or CSV table per experiment artifact, with a small
stable schema: ``{"experiment": ..., "series"|"rows": ..., "meta": ...}``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.harness.breakdown import ConfigBreakdown
from repro.harness.scaling import ScalingPoint
from repro.harness.speedup import SpeedupRow

__all__ = [
    "export_scaling_json",
    "export_scaling_csv",
    "export_breakdowns_json",
    "export_table1_json",
]


def _write_json(path: str | Path, payload: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def export_scaling_json(
    path: str | Path,
    points: Sequence[ScalingPoint],
    experiment: str,
    meta: Mapping[str, object] | None = None,
) -> Path:
    """One Figure-1-style series: config label -> hours."""
    return _write_json(
        path,
        {
            "experiment": experiment,
            "series": [
                {
                    "config": p.label,
                    "hours": p.hours,
                    "per_iteration_seconds": p.per_iteration_seconds,
                    "load_data_seconds": p.load_data_seconds,
                }
                for p in points
            ],
            "meta": dict(meta or {}),
        },
    )


def export_scaling_csv(path: str | Path, points: Sequence[ScalingPoint]) -> Path:
    """Write scaling-sweep points as a CSV table and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(
            ["config", "hours", "per_iteration_seconds", "load_data_seconds"]
        )
        for p in points:
            writer.writerow(
                [p.label, p.hours, p.per_iteration_seconds, p.load_data_seconds]
            )
    return path


def export_breakdowns_json(
    path: str | Path,
    breakdowns: Sequence[ConfigBreakdown],
    experiment: str = "figs2-5",
) -> Path:
    """The four figure views (2-5) for every profiled configuration."""
    payload = {"experiment": experiment, "configs": []}
    for cb in breakdowns:
        payload["configs"].append(
            {
                "label": cb.label,
                "master": {
                    "compute": cb.master.compute,
                    "collective": cb.master.collective,
                    "p2p": cb.master.p2p,
                },
                "worker_mean": {
                    "compute": cb.worker_mean.compute,
                    "collective": cb.worker_mean.collective,
                    "p2p": cb.worker_mean.p2p,
                },
                "worker_spread": {
                    fn: {"min": lo, "max": hi}
                    for fn, (lo, hi) in cb.worker_spread.items()
                },
                "master_cycles": {
                    fn: {
                        "committed": c.committed,
                        "iu_empty": c.iu_empty,
                        "axu_dep_stall": c.axu_dep_stall,
                        "fxu_dep_stall": c.fxu_dep_stall,
                    }
                    for fn, c in cb.master_cycles.items()
                },
                "worker_cycles": {
                    fn: {
                        "committed": c.committed,
                        "iu_empty": c.iu_empty,
                        "axu_dep_stall": c.axu_dep_stall,
                        "fxu_dep_stall": c.fxu_dep_stall,
                    }
                    for fn, c in cb.worker_cycles.items()
                },
            }
        )
    return _write_json(path, payload)


def export_table1_json(
    path: str | Path, rows: Sequence[SpeedupRow], experiment: str = "table1"
) -> Path:
    return _write_json(
        path,
        {
            "experiment": experiment,
            "rows": [
                {
                    "criterion": r.criterion,
                    "xeon_hours": r.xeon_hours,
                    "bgq_hours": r.bgq_hours,
                    "speedup": r.speedup,
                    "frequency_adjusted": r.frequency_adjusted,
                }
                for r in rows
            ],
        },
    )
