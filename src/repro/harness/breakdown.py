"""Per-function breakdown drivers: Figures 2, 3, 4, and 5.

The paper profiles the three one-rack configurations (1024-1-64,
2048-2-32, 4096-4-16) and plots, for master and workers separately,
(i) cycles split into committed / IU-empty / AXU / FXU categories per
function (Figs 2-3) and (ii) MPI time split into collective and
point-to-point per function (Figs 4-5).  These drivers rerun the
simulated trainer per configuration and organize the tracer output into
exactly those views.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bgq.cycles import CycleCategories, CycleModel
from repro.bgq.node import RunShape
from repro.dist.script import IterationScript
from repro.dist.simulated import SimJobConfig, SimRunResult, simulate_training
from repro.dist.timeline import RankBreakdown, cycles_breakdown, ordered_sum
from repro.dist.workload import SimWorkload

__all__ = ["BREAKDOWN_CONFIGS", "ConfigBreakdown", "run_breakdowns"]

BREAKDOWN_CONFIGS = ("1024-1-64", "2048-2-32", "4096-4-16")
"""The three panels of each of Figures 2-5."""


@dataclass
class ConfigBreakdown:
    """All four figure views for one configuration."""

    label: str
    master: RankBreakdown
    worker_mean: RankBreakdown
    worker_spread: dict[str, tuple[float, float]]
    """Per compute function: (min, max) seconds across sampled workers —
    the visible variance of Fig 3's worker_curvature_product."""
    master_cycles: dict[str, CycleCategories]
    worker_cycles: dict[str, CycleCategories]
    result: SimRunResult = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def master_collective_total(self) -> float:
        return ordered_sum(self.master.collective)

    @property
    def master_p2p_total(self) -> float:
        return ordered_sum(self.master.p2p)


def _worker_spread(
    res: SimRunResult, sample: int = 32
) -> dict[str, tuple[float, float]]:
    import numpy as np

    n_workers = res.config.n_workers
    ranks = np.linspace(1, res.config.shape.ranks - 1, min(sample, n_workers)).astype(int)
    lows: dict[str, float] = {}
    highs: dict[str, float] = {}
    for r in ranks:
        b = res.breakdown(int(r))
        for fn, secs in b.compute.items():
            lows[fn] = min(lows.get(fn, secs), secs)
            highs[fn] = max(highs.get(fn, secs), secs)
    return {fn: (lows[fn], highs[fn]) for fn in lows}


def run_breakdowns(
    workload: SimWorkload,
    script: IterationScript,
    configs: tuple[str, ...] = BREAKDOWN_CONFIGS,
    cycle_model: CycleModel | None = None,
    **overrides: object,
) -> list[ConfigBreakdown]:
    """Produce the Figs 2-5 data for each configuration."""
    cycle_model = cycle_model or CycleModel()
    out: list[ConfigBreakdown] = []
    for spec in configs:
        shape = RunShape.parse(spec)
        cfg = SimJobConfig(shape=shape, workload=workload, script=script, **overrides)  # type: ignore[arg-type]
        res = simulate_training(cfg)
        master = res.master_breakdown()
        worker = res.mean_worker_breakdown()
        out.append(
            ConfigBreakdown(
                label=spec,
                master=master,
                worker_mean=worker,
                worker_spread=_worker_spread(res),
                master_cycles=cycles_breakdown(
                    master, shape.threads_per_core, cycle_model
                ),
                worker_cycles=cycles_breakdown(
                    worker, shape.threads_per_core, cycle_model
                ),
                result=res,
            )
        )
    return out
