"""Self-contained markdown run reports (``repro report``).

One simulated run -> one markdown document a reviewer can read without
the repo at hand: the configuration, the exact per-rank time
attribution, the critical path that explains the finish time, the
Fig-4 per-phase breakdown, the heaviest communication pairs, and the
fault/recovery summary.  The same driver can append the counter-flow
sweep table, and ``repro report --json`` emits the run's metric records
so a later ``repro obs diff`` can gate against the report's numbers.
"""

from __future__ import annotations

from typing import Any

__all__ = ["build_run_report", "report_records"]


def _config_section(result: Any) -> list[str]:
    cfg = result.config
    shape = cfg.shape
    lines = [
        "## Configuration",
        "",
        "| field | value |",
        "|---|---|",
        f"| shape | {shape.ranks}-{shape.ranks_per_node}-{shape.threads_per_rank} |",
        f"| seed | {cfg.seed} |",
        f"| iterations | {cfg.script.n_iterations} "
        f"(representing {cfg.script.represented_iterations}) |",
        f"| train frames | {cfg.workload.train_frames} |",
        f"| virtual finish | {result.finish_time!r} s |",
        f"| load phase | {result.load_data_seconds:.6g} s |",
        f"| messages | {result.total_messages} |",
        f"| bytes | {result.total_bytes} |",
        f"| execution | {'vector (phase log)' if result.phase_log else 'scalar (spans)'} |",
    ]
    return lines


def _attribution_section(result: Any) -> list[str]:
    att = result.attribution()
    lines = [
        "## Time attribution",
        "",
        "Per-rank split of the virtual finish time; each row sums to the",
        f"run's finish time ({att.finish_time!r} s) *bitwise* — `wait` is",
        "the exact residual, so no virtual second is unaccounted.",
        "",
        "| rank | compute (s) | comm (s) | recovery (s) | wait (s) |",
        "|---|---|---|---|---|",
    ]
    for a in att.ranks:
        tag = str(a.rank)
        if a.rank == 0:
            tag += " (master)"
        if a.rank == att.straggler_rank:
            tag += " (straggler)"
        lines.append(
            f"| {tag} | {a.compute:.6g} | {a.comm:.6g} "
            f"| {a.recovery:.6g} | {a.wait:.6g} |"
        )
    lines.append("")
    lines.append(f"Straggler rank (latest finisher): {att.straggler_rank}.")
    return lines


def _critpath_section(result: Any) -> list[str]:
    cp = result.critical_path()
    lines = [
        "## Critical path",
        "",
        cp.describe(),
        "",
        "| # | rank | label | phase | start (s) | duration (s) |",
        "|---|---|---|---|---|---|",
    ]
    top = cp.top_steps(10)
    index = {id(s): i for i, s in enumerate(cp.steps)}
    for s in top:
        lines.append(
            f"| {index[id(s)]} | {s.rank} | {s.label} | {s.phase} "
            f"| {s.start:.6g} | {s.duration:.6g} |"
        )
    cats = cp.by_category()
    split = ", ".join(f"{k}: {cats[k]:.6g} s" for k in sorted(cats))
    lines += ["", f"Path split — {split}."]
    return lines


def _phase_section(result: Any) -> list[str]:
    from repro.obs.attrib import phase_flow_rows

    rows = phase_flow_rows(result.tracer, result.config.shape.ranks)
    lines = [
        "## Per-phase breakdown (Fig-4 view)",
        "",
        "| phase | role | kind | seconds |",
        "|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['phase']} | {row['role']} | {row['kind']} "
            f"| {row['seconds']:.6g} |"
        )
    return lines


def _comm_section(registry: Any) -> list[str]:
    pairs = [
        (rec["value"], rec["labels"]["src"], rec["labels"]["dst"])
        for rec in registry.snapshot()
        if rec["metric"] == "comm.pair.bytes"
    ]
    lines = ["## Top communication pairs", ""]
    if not pairs:
        lines.append("No per-pair traffic recorded.")
        return lines
    lines += ["| src | dst | bytes |", "|---|---|---|"]
    for nbytes, src, dst in sorted(
        pairs, key=lambda t: (-t[0], t[1], t[2])
    )[:5]:
        lines.append(f"| {src} | {dst} | {nbytes} |")
    return lines


def _fault_section(result: Any) -> list[str]:
    lines = ["## Faults and recovery", ""]
    rec = result.recovery
    plan = result.config.fault_plan
    if plan is None and rec is None:
        lines.append("Fault-free run (no plan, no recovery policy).")
        return lines
    if plan is not None:
        lines.append(f"Fault plan: {len(plan.events)} event(s).")
    if rec is not None:
        lines.append(
            f"Recovery actions: {rec.recoveries}; "
            f"excluded ranks: {list(rec.excluded_ranks) or 'none'}."
        )
        if rec.events:
            lines += ["", "```", rec.describe(), "```"]
    return lines


def build_run_report(
    result: Any,
    registry: Any,
    title: str = "Simulated run report",
    counterflow_points: list[dict[str, Any]] | None = None,
) -> str:
    """Render one run (plus optional counter-flow sweep) as markdown.

    ``result`` is a :class:`~repro.dist.simulated.SimRunResult`;
    ``registry`` the obs registry attached to the same run.  The
    document is self-contained — every number it cites is in the text.
    """
    sections = [
        [f"# {title}", ""],
        _config_section(result),
        _attribution_section(result),
        _critpath_section(result),
        _phase_section(result),
        _comm_section(registry),
        _fault_section(result),
    ]
    if counterflow_points:
        from repro.harness.counterflow import render_counterflow

        sections.append(
            [
                "## Counter-flow sweep",
                "",
                render_counterflow(counterflow_points),
            ]
        )
    return "\n\n".join("\n".join(s) for s in sections) + "\n"


def report_records(result: Any, registry: Any) -> list[dict[str, Any]]:
    """The run's metric records plus an attribution summary record.

    This is the ``repro report --json`` payload: the full obs snapshot
    (which already carries ``train.phase_seconds``) followed by one
    ``record: attribution`` line per attributed rank — everything
    ``repro obs diff`` needs to gate a later run against this one.
    """
    records = list(registry.snapshot())
    att = result.attribution()
    for a in att.ranks:
        records.append({"record": "attribution", **a.as_dict()})
    cp = result.critical_path()
    records.append(
        {
            "record": "critical_path",
            "granularity": cp.granularity,
            "steps": len(cp.steps),
            "straggler_rank": cp.straggler_rank,
            "straggler_phase": cp.straggler_phase,
            "by_category": cp.by_category(),
        }
    )
    return records
