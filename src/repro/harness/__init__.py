"""Experiment harness: one driver per paper table/figure.

* :mod:`~repro.harness.scaling` — Fig 1(a)/(b) and the linear-scaling
  claim;
* :mod:`~repro.harness.breakdown` — Figs 2-5 cycle and MPI breakdowns;
* :mod:`~repro.harness.speedup` — Table I (BG/Q vs Xeon cluster);
* :mod:`~repro.harness.calibrate` — real-run control-flow extraction
  feeding the simulator;
* :mod:`~repro.harness.report` — text renderers matching the paper's
  rows/series;
* :mod:`~repro.harness.counterflow` — the Fig-4 per-phase
  compute-vs-comm sweep across partition sizes;
* :mod:`~repro.harness.runreport` — self-contained markdown run
  reports (``repro report``);
* :mod:`~repro.harness.serving` — the inference-serving saturation
  sweep and batching tradeoff (``repro serve`` / ``repro perf
  --serve``).
"""

from repro.harness.breakdown import BREAKDOWN_CONFIGS, ConfigBreakdown, run_breakdowns
from repro.harness.calibrate import CalibrationRun, calibrated_script
from repro.harness.counterflow import (
    DEFAULT_COUNTERFLOW_RANKS,
    counterflow_from_dumps,
    counterflow_records,
    render_counterflow,
    run_counterflow,
)
from repro.harness.runreport import build_run_report, report_records
from repro.harness.export import (
    export_breakdowns_json,
    export_scaling_csv,
    export_scaling_json,
    export_table1_json,
)
from repro.harness.report import render_cycles, render_mpi_split, render_series, render_table
from repro.harness.scaling import (
    FIG1A_CONFIGS,
    FIG1B_CONFIGS,
    FaultSweepPoint,
    OverlapAblation,
    ScalingPoint,
    collective_crossover,
    default_workload,
    efficiencies,
    run_config,
    run_fault_sweep,
    run_fig1a,
    run_fig1b,
    run_overlap_ablation,
    run_scaling_claim,
)
from repro.harness.serving import (
    DEFAULT_SWEEP_LOADS,
    SweepPoint,
    capacity_rps,
    render_batching,
    render_saturation,
    run_batching_tradeoff,
    run_saturation_sweep,
    serve_payload,
)
from repro.harness.speedup import SpeedupRow, bgq_hours, run_table1, xeon_hours

__all__ = [
    "BREAKDOWN_CONFIGS",
    "ConfigBreakdown",
    "run_breakdowns",
    "CalibrationRun",
    "calibrated_script",
    "export_breakdowns_json",
    "export_scaling_csv",
    "export_scaling_json",
    "export_table1_json",
    "render_cycles",
    "render_mpi_split",
    "render_series",
    "render_table",
    "FIG1A_CONFIGS",
    "FIG1B_CONFIGS",
    "FaultSweepPoint",
    "OverlapAblation",
    "ScalingPoint",
    "collective_crossover",
    "run_overlap_ablation",
    "default_workload",
    "efficiencies",
    "run_config",
    "run_fault_sweep",
    "run_fig1a",
    "run_fig1b",
    "run_scaling_claim",
    "SpeedupRow",
    "bgq_hours",
    "run_table1",
    "xeon_hours",
    "DEFAULT_COUNTERFLOW_RANKS",
    "counterflow_from_dumps",
    "counterflow_records",
    "render_counterflow",
    "run_counterflow",
    "build_run_report",
    "report_records",
    "DEFAULT_SWEEP_LOADS",
    "SweepPoint",
    "capacity_rps",
    "render_batching",
    "render_saturation",
    "run_batching_tradeoff",
    "run_saturation_sweep",
    "serve_payload",
]
