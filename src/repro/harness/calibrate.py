"""Calibration: extract a real HF control-flow profile for the simulator.

The simulated figures replay an :class:`~repro.dist.script.
IterationScript`; this module produces one honestly — by training a
*real* DNN with the *real* Hessian-free optimizer on a scaled-down
synthetic corpus and recording how many CG iterations and held-out
evaluations each outer iteration actually used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.script import IterationScript, calibrate_script
from repro.hf.optimizer import HessianFreeOptimizer
from repro.hf.sources import FrameSource
from repro.hf.types import HFConfig, HFResult
from repro.nn.losses import CrossEntropyLoss
from repro.nn.network import DNN
from repro.speech.corpus import CorpusConfig, build_corpus

__all__ = ["CalibrationRun", "calibrated_script"]


@dataclass
class CalibrationRun:
    """The real run behind a calibrated script."""

    script: IterationScript
    hf_result: HFResult
    net: DNN


def calibrated_script(
    iterations: int = 3,
    represented_iterations: int = 30,
    hours: float = 50.0,
    scale: float = 1e-4,
    hidden: int = 32,
    seed: int = 0,
) -> CalibrationRun:
    """Train a miniature model for ``iterations`` outer iterations and
    return the extracted script.

    The miniature run keeps every algorithmic knob at its full-scale
    value (CG tolerance, damping schedule, curvature fraction), so the
    *counts* it produces — which is all the simulator consumes — are
    representative even though the model is small.
    """
    corpus = build_corpus(
        CorpusConfig(hours=hours, scale=scale, context=2, seed=seed)
    )
    x, y = corpus.frame_data()
    hx, hy = corpus.heldout_frame_data()
    net = DNN([corpus.config.input_dim, hidden, hidden, corpus.n_states])
    source = FrameSource(
        net, CrossEntropyLoss(), x, y, hx, hy, curvature_fraction=0.02, seed=seed
    )
    optimizer = HessianFreeOptimizer(
        source, HFConfig(max_iterations=iterations, seed=seed)
    )
    result = optimizer.run(net.init_params(seed))
    return CalibrationRun(
        script=calibrate_script(result, represented_iterations),
        hf_result=result,
        net=net,
    )
