"""Table I driver: BG/Q 4096 ranks vs a 96-process Intel Xeon cluster.

Two training criteria (cross-entropy and sequence-discriminative), two
machines, same algorithm and workload:

* **BG/Q arm** — 4096-4-16 on one rack, torus network, CNK (no jitter),
  MPI collectives;
* **Xeon arm** — 96 single-threaded processes on 8 x 12-core 2.9 GHz
  nodes, contended Ethernet, Linux jitter, and socket-style serial
  broadcast (the paper's pre-MPI communication layer).

The frequency-adjustment column multiplies the wall-clock speed-up by
2.9/1.6, exactly as the paper's last column does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgq.kernel import LinuxJitter
from repro.bgq.node import NodeSpec, RunShape
from repro.cluster.ethernet import EthernetNetworkModel
from repro.cluster.xeon import XEON_CORE, XeonClusterSpec, xeon_perf_model
from repro.dist.script import IterationScript
from repro.dist.simulated import SimJobConfig, simulate_training
from repro.dist.workload import GEOMETRY_50HR, ModelGeometry, SimWorkload
from repro.gemm.perf import GemmPerfModel
from repro.speech.corpus import FRAMES_PER_HOUR

__all__ = ["SpeedupRow", "run_table1", "bgq_hours", "xeon_hours"]

_XEON_FRAMEWORK_EFFICIENCY = 0.85
"""Out-of-order cores + mature BLAS sustain a higher fraction of the
modeled GEMM rate than the in-order A2 (whose SimWorkload default is
calibrated against Table I's BG/Q absolute time)."""

_SEQUENCE_EFFECTIVE_STATES = 800
"""Effective denominator branching for the sequence criterion's
forward-backward surcharge, calibrated so sequence training costs ~2x
cross-entropy — the ratio both the paper's Table I (18.7/9) and our real
small-scale MMI runs exhibit."""


@dataclass
class SpeedupRow:
    """One row of Table I."""

    criterion: str
    xeon_hours: float
    bgq_hours: float

    @property
    def speedup(self) -> float:
        return self.xeon_hours / self.bgq_hours

    @property
    def frequency_adjusted(self) -> float:
        return self.speedup * XeonClusterSpec().frequency_ratio()


def _workload(
    hours: float, sequence: bool, geometry: ModelGeometry, xeon: bool
) -> SimWorkload:
    return SimWorkload(
        geometry=geometry,
        train_frames=int(hours * FRAMES_PER_HOUR),
        heldout_frames=max(1, int(hours * FRAMES_PER_HOUR * 0.1)),
        sequence_states=_SEQUENCE_EFFECTIVE_STATES if sequence else 0,
        perf=xeon_perf_model() if xeon else GemmPerfModel(),
        framework_efficiency=_XEON_FRAMEWORK_EFFICIENCY if xeon else 0.13,
    )


def bgq_hours(
    script: IterationScript,
    hours: float = 50.0,
    sequence: bool = False,
    spec: str = "4096-4-16",
    geometry: ModelGeometry = GEOMETRY_50HR,
) -> float:
    """Projected BG/Q training hours for one Table I cell."""
    cfg = SimJobConfig(
        shape=RunShape.parse(spec),
        workload=_workload(hours, sequence, geometry, xeon=False),
        script=script,
    )
    return simulate_training(cfg).represented_total_hours


def xeon_hours(
    script: IterationScript,
    hours: float = 50.0,
    sequence: bool = False,
    cluster: XeonClusterSpec = XeonClusterSpec(),
    geometry: ModelGeometry = GEOMETRY_50HR,
) -> float:
    """Projected Xeon-cluster training hours for one Table I cell."""
    node = NodeSpec(cores=cluster.cores_per_node, core=XEON_CORE)
    shape = RunShape(
        ranks=cluster.processes,
        ranks_per_node=cluster.cores_per_node,
        threads_per_rank=1,
        node=node,
    )
    cfg = SimJobConfig(
        shape=shape,
        workload=_workload(hours, sequence, geometry, xeon=True),
        script=script,
        bcast_algorithm="serial",  # socket-era communication (Sec. V-B)
        network=EthernetNetworkModel(
            nodes=cluster.nodes, ranks_per_node=cluster.cores_per_node
        ),
        noise=LinuxJitter(),
    )
    return simulate_training(cfg).represented_total_hours


def run_table1(script: IterationScript, hours: float = 50.0) -> list[SpeedupRow]:
    """Both Table I rows: 50-hour cross-entropy and 50-hour sequence."""
    rows = []
    for criterion, sequence in (("Cross-Entropy", False), ("Sequence", True)):
        rows.append(
            SpeedupRow(
                criterion=f"{hours:g}-hour {criterion}",
                xeon_hours=xeon_hours(script, hours, sequence),
                bgq_hours=bgq_hours(script, hours, sequence),
            )
        )
    return rows
