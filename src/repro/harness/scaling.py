"""Scaling-study drivers: Figure 1(a), Figure 1(b), and the linearity
claim (Section VIII: "speed-ups that scale linearly up to 4096
processes; beyond that ... sub-linear").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.bgq.network import TorusNetworkModel
from repro.bgq.node import RunShape
from repro.dist.script import IterationScript
from repro.dist.simulated import SimJobConfig, SimRunResult, simulate_training
from repro.dist.timeline import RankBreakdown
from repro.dist.workload import GEOMETRY_50HR, GEOMETRY_400HR, ModelGeometry, SimWorkload
from repro.faults import FaultPlan, FaultPolicy
from repro.speech.corpus import FRAMES_PER_HOUR
from repro.util.rng import derive_seed
from repro.vmpi.algoselect import CollectivePolicy

__all__ = [
    "ScalingPoint",
    "FaultSweepPoint",
    "FIG1A_CONFIGS",
    "FIG1B_CONFIGS",
    "OverlapAblation",
    "collective_crossover",
    "default_workload",
    "run_config",
    "run_fault_sweep",
    "run_fig1a",
    "run_fig1b",
    "run_overlap_ablation",
    "run_scaling_claim",
]

FIG1A_CONFIGS = ("1024-1-16", "1024-1-32", "1024-1-64", "2048-2-32", "4096-4-16")
"""One rack (1024 nodes): the thread/rank trade-off sweep of Fig 1(a)."""

FIG1B_CONFIGS = FIG1A_CONFIGS + ("8192-4-16",)
"""Fig 1(b) adds the second rack."""


@dataclass
class ScalingPoint:
    """One bar of Figure 1 (or one point of the efficiency curve)."""

    label: str
    hours: float
    per_iteration_seconds: float
    load_data_seconds: float
    result: SimRunResult = field(repr=False, default=None)  # type: ignore[assignment]


def default_workload(
    hours: float,
    geometry: ModelGeometry | None = None,
    sequence_states: int = 0,
) -> SimWorkload:
    """Paper-sized workload: ``hours`` of audio at 360k frames/hour,
    10 % held-out, 2 % curvature sample.

    Framework efficiency is per-geometry: the 50-hour model inherits the
    Table-I-ratio calibration (0.13, see ``SimWorkload``); the 400-hour
    model's 4096-wide GEMMs amortize framework overheads far better, and
    0.40 anchors its two-rack training time to the paper's "6.3 hours".
    The paper's absolute numbers are not mutually consistent under any
    single efficiency constant — EXPERIMENTS.md discusses this.
    """
    if geometry is None:
        geometry = GEOMETRY_400HR if hours > 100 else GEOMETRY_50HR
    efficiency = 0.40 if geometry.n_params > 100e6 else 0.13
    return SimWorkload(
        geometry=geometry,
        train_frames=int(hours * FRAMES_PER_HOUR),
        heldout_frames=max(1, int(hours * FRAMES_PER_HOUR * 0.1)),
        sequence_states=sequence_states,
        framework_efficiency=efficiency,
    )


def run_config(
    spec: str,
    workload: SimWorkload,
    script: IterationScript,
    **overrides: object,
) -> ScalingPoint:
    """Simulate one ``ranks-rpn-threads`` configuration."""
    cfg = SimJobConfig(
        shape=RunShape.parse(spec), workload=workload, script=script, **overrides  # type: ignore[arg-type]
    )
    res = simulate_training(cfg)
    return ScalingPoint(
        label=spec,
        hours=res.represented_total_hours,
        per_iteration_seconds=res.per_iteration_seconds,
        load_data_seconds=res.load_data_seconds,
        result=res,
    )


def run_fig1a(
    script: IterationScript,
    hours: float = 50.0,
    configs: tuple[str, ...] = FIG1A_CONFIGS,
) -> list[ScalingPoint]:
    """Figure 1(a): 50-hour corpus on one rack, varying rank/thread mix."""
    wl = default_workload(hours)
    return [run_config(c, wl, script) for c in configs]


def run_fig1b(
    script: IterationScript,
    hours: float = 400.0,
    configs: tuple[str, ...] = FIG1B_CONFIGS,
) -> list[ScalingPoint]:
    """Figure 1(b): 400-hour corpus, scaling to two racks."""
    wl = default_workload(hours)
    return [run_config(c, wl, script) for c in configs]


def run_scaling_claim(
    script: IterationScript,
    hours: float = 50.0,
    ranks: tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192, 16384),
    ranks_per_node: int = 4,
    threads_per_rank: int = 16,
) -> list[ScalingPoint]:
    """Efficiency curve over rank count at fixed rank/thread shape.

    The paper's claim shapes: near-linear speedup to ~4096 ranks, then a
    clearly sub-linear region as fixed communication costs stop
    shrinking while per-worker compute keeps halving.
    """
    wl = default_workload(hours)
    points = []
    for r in ranks:
        spec = f"{r}-{ranks_per_node}-{threads_per_rank}"
        points.append(run_config(spec, wl, script))
    return points


def collective_crossover(
    spec: str,
    sizes: tuple[int, ...] = tuple(1 << k for k in range(10, 31, 2)),
) -> list[dict[str, object]]:
    """Algorithm-selection table for one machine shape — the data behind
    a Fig-4-style "which collective wins at which message size" plot.

    Pure closed-form evaluation (no simulation): builds the shape's
    torus network model, derives a :class:`CollectivePolicy` from it, and
    tabulates the chosen algorithm and cost for bcast / allreduce /
    reduce across ``sizes``.
    """
    shape = RunShape.parse(spec)
    network = TorusNetworkModel(
        nodes=shape.nodes, ranks_per_node=shape.ranks_per_node
    )
    policy = CollectivePolicy.from_network(network, shape.ranks)
    return policy.crossover_table(shape.ranks, sizes)


@dataclass
class OverlapAblation:
    """Worker-side gradient+sync collective seconds, three ways."""

    spec: str
    binomial_seconds: float
    """Fixed single-algorithm cost model, no overlap (the historical
    default)."""
    serial_seconds: float
    """Socket-style serial broadcast baseline."""
    overlap_seconds: float
    """``collective_selection="auto"`` + bucketed gradient overlap."""

    @property
    def win_vs_binomial(self) -> float:
        return 1.0 - self.overlap_seconds / self.binomial_seconds

    @property
    def win_vs_serial(self) -> float:
        return 1.0 - self.overlap_seconds / self.serial_seconds


def _worker_gradsync(result: SimRunResult) -> float:
    """Mean worker gradient-phase collective time: the weight broadcast
    plus the gradient reduction (comm + emergent straggler skew, but not
    the gradient compute itself, which is identical across variants)."""
    b: RankBreakdown = result.mean_worker_breakdown()
    return b.collective.get("sync_weights", 0.0) + b.collective.get(
        "reduce_gradient", 0.0
    )


def run_overlap_ablation(
    spec: str = "1024-4-16",
    hours: float = 2.0,
    script: IterationScript | None = None,
) -> OverlapAblation:
    """The PR's headline comparison: auto-selected algorithms with
    bucketed gradient/backprop overlap vs the fixed binomial and serial
    baselines, on a large-payload (400-hour-geometry, 427 MB theta)
    gradient phase at scale.

    The metric is the *worker-side* gradient+sync collective time —
    on the master those spans are dominated by waiting for worker
    compute, which no communication algorithm can shrink.
    """
    wl = default_workload(hours, geometry=GEOMETRY_400HR)
    if script is None:
        script = IterationScript(
            cg_iters=(2,), heldout_evals=(1,), represented_iterations=100
        )
    base = run_config(spec, wl, script)
    serial = run_config(spec, wl, script, bcast_algorithm="serial")
    overlap = run_config(
        spec,
        wl,
        script,
        collective_selection="auto",
        overlap_gradient=True,
    )
    return OverlapAblation(
        spec=spec,
        binomial_seconds=_worker_gradsync(base.result),
        serial_seconds=_worker_gradsync(serial.result),
        overlap_seconds=_worker_gradsync(overlap.result),
    )


@dataclass
class FaultSweepPoint:
    """Time-to-converge at one sampled fault rate."""

    crash_rate: float
    slowdown_rate: float
    total_seconds: float
    """Load + iteration time — the time-to-converge proxy (every run
    completes the same represented iteration count, faults or not)."""
    per_iteration_seconds: float
    recoveries: int
    excluded_ranks: tuple[int, ...]
    plan: FaultPlan = field(repr=False, default=None)  # type: ignore[assignment]
    result: SimRunResult = field(repr=False, default=None)  # type: ignore[assignment]


def run_fault_sweep(
    spec: str = "64-1-16",
    hours: float = 0.5,
    crash_rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
    seed: int = 0,
    slowdown_rate: float = 0.0,
    script: IterationScript | None = None,
    policy: FaultPolicy | None = None,
    obs_dir: str | Path | None = None,
) -> list[FaultSweepPoint]:
    """Time-to-converge vs fault rate under the recovery policy.

    A fault-free anchor run sizes everything: its total simulated time is
    the horizon inside which :meth:`FaultPlan.sample` places crash and
    straggler events, and (when ``policy`` is not given) its per-iteration
    time sets the policy's ``recv_timeout`` — the detector threshold must
    exceed the slowest honest phase or the master starts excluding live
    workers (a full outer iteration is a safe upper bound on any single
    phase).  Each rate then gets a sampled plan from its own derived seed
    and one simulated run; rank 0 is always spared so the master survives
    to drive recovery.

    ``obs_dir``, when given, writes one metrics JSONL per rate
    (``faults_rate{rate}.jsonl``) carrying the ``faults.injected{kind}``,
    ``train.recoveries`` and ``train.excluded_ranks`` counters.

    Deterministic end to end: same arguments, same points.
    """
    wl = default_workload(hours)
    if script is None:
        script = IterationScript(
            cg_iters=(6, 8), heldout_evals=(3, 4), represented_iterations=20
        )
    shape = RunShape.parse(spec)
    # Anchor: zero faults under *a* policy (the ft protocol, not the
    # collective one — same protocol the faulty runs use).  recv_timeout
    # never fires without faults, so the placeholder value is timing-
    # neutral and the anchor is reusable as the rate-0 point.
    anchor_policy = policy if policy is not None else FaultPolicy(recv_timeout=3600.0)
    base = simulate_training(
        SimJobConfig(
            shape=shape, workload=wl, script=script, seed=seed,
            fault_policy=anchor_policy,
        )
    )
    horizon = base.load_data_seconds + base.iteration_seconds
    if policy is None:
        policy = FaultPolicy(
            recv_timeout=max(base.per_iteration_seconds, 1e-6),
            max_retries=2,
        )

    points: list[FaultSweepPoint] = []
    for i, rate in enumerate(crash_rates):
        plan = FaultPlan.sample(
            derive_seed(seed, "fault-sweep", i),
            shape.ranks,
            crash_rate=rate,
            slowdown_rate=slowdown_rate,
            horizon=horizon,
        )
        obs = None
        if obs_dir is not None:
            from repro.obs.metrics import MetricsRegistry

            obs = MetricsRegistry()
        if rate == 0.0 and plan.empty and policy is anchor_policy and obs is None:
            res = base  # the anchor already is this point
        else:
            res = simulate_training(
                SimJobConfig(
                    shape=shape, workload=wl, script=script, seed=seed,
                    fault_plan=None if plan.empty else plan,
                    fault_policy=policy,
                ),
                obs=obs,
            )
        if obs is not None:
            out_dir = Path(obs_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            obs.to_jsonl(out_dir / f"faults_rate{rate:g}.jsonl")
        points.append(
            FaultSweepPoint(
                crash_rate=rate,
                slowdown_rate=slowdown_rate,
                total_seconds=res.load_data_seconds + res.iteration_seconds,
                per_iteration_seconds=res.per_iteration_seconds,
                recoveries=res.recovery.recoveries if res.recovery else 0,
                excluded_ranks=res.excluded_ranks,
                plan=plan,
                result=res,
            )
        )
    return points


def efficiencies(points: list[ScalingPoint]) -> list[float]:
    """Parallel efficiency of each point relative to the first
    (eff = t0 * r0 / (t_i * r_i) using per-iteration times)."""
    if not points:
        return []
    r0 = RunShape.parse(points[0].label).ranks
    t0 = points[0].per_iteration_seconds
    out = []
    for p in points:
        r = RunShape.parse(p.label).ranks
        out.append((t0 * r0) / (p.per_iteration_seconds * r))
    return out
