"""Fig-4 counter-flow: per-phase compute-vs-comm across partition sizes.

The paper's Fig. 4 message is a *counter-flow*: as the number of data
partitions grows, per-rank compute time per phase shrinks (each rank
owns fewer frames) while communication time grows (deeper trees, more
synchronization) — and the crossover bounds useful scaling.  This
driver runs one simulated configuration per rank count, folds each
run's span totals into the per-phase ``(role, kind, seconds)`` rows of
:func:`repro.obs.attrib.phase_flow_rows`, and renders the sweep as a
markdown table (phases x rank counts) plus JSONL records that
``repro obs diff`` can gate across runs.

``counterflow_from_dumps`` rebuilds the same sweep from previously
written metrics dumps (the ``train.phase_seconds`` records every
obs-attached run emits), so the table can be regenerated without
re-simulating.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "DEFAULT_COUNTERFLOW_RANKS",
    "run_counterflow",
    "counterflow_from_dumps",
    "counterflow_records",
    "render_counterflow",
]

DEFAULT_COUNTERFLOW_RANKS = (64, 512, 4096)
"""Partition-size sweep of the Fig-4 recipe (EXPERIMENTS.md)."""


def run_counterflow(
    ranks: tuple[int, ...] = DEFAULT_COUNTERFLOW_RANKS,
    script: Any | None = None,
    hours: float = 50.0,
    seed: int = 0,
    sample: int = 16,
) -> list[dict[str, Any]]:
    """Simulate one run per rank count and collect its phase rows.

    Returns one point per rank count:
    ``{"spec", "ranks", "finish_time", "rows"}`` with ``rows`` from
    :func:`repro.obs.attrib.phase_flow_rows`.  Shapes follow the perf
    harness convention (``<ranks>-4-16``).
    """
    from repro.bgq import RunShape
    from repro.dist import IterationScript, SimJobConfig, simulate_training
    from repro.harness.scaling import default_workload
    from repro.obs.attrib import phase_flow_rows

    if script is None:
        script = IterationScript((10,), (3,), represented_iterations=30)
    points: list[dict[str, Any]] = []
    for p in ranks:
        spec = f"{p}-4-16"
        cfg = SimJobConfig(
            shape=RunShape.parse(spec),
            workload=default_workload(hours),
            script=script,
            seed=seed,
        )
        res = simulate_training(cfg)
        points.append(
            {
                "spec": spec,
                "ranks": p,
                "finish_time": res.finish_time,
                "rows": phase_flow_rows(res.tracer, p, sample=sample),
            }
        )
    return points


def counterflow_from_dumps(paths: list[Any]) -> list[dict[str, Any]]:
    """Rebuild sweep points from ``train.phase_seconds`` dump records.

    Each JSONL dump contributes one point per distinct ``shape`` label
    found; points sort by rank count so mixed dumps merge cleanly.
    """
    from repro.obs.diff import load_metric_records

    by_spec: dict[str, list[dict[str, Any]]] = {}
    for path in paths:
        for rec in load_metric_records(path):
            if rec.get("metric") != "train.phase_seconds":
                continue
            labels = rec.get("labels", {})
            spec = labels.get("shape", "?")
            by_spec.setdefault(spec, []).append(
                {
                    "phase": labels.get("phase", "other"),
                    "role": labels.get("role", "?"),
                    "kind": labels.get("kind", "?"),
                    "seconds": rec.get("value", 0.0),
                }
            )
    points = [
        {
            "spec": spec,
            "ranks": int(spec.split("-", 1)[0]) if spec.split("-", 1)[0].isdigit() else 0,
            "rows": rows,
        }
        for spec, rows in by_spec.items()
    ]
    points.sort(key=lambda pt: (pt["ranks"], pt["spec"]))
    return points


def counterflow_records(points: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Sweep points -> flat ``train.phase_seconds`` gauge records.

    The JSONL form of the table: one record per (shape, phase, role,
    kind), alignable by ``repro obs diff`` against a committed baseline.
    """
    from repro.obs.metrics import gauge_record

    out: list[dict[str, Any]] = []
    for pt in points:
        for row in pt["rows"]:
            out.append(
                gauge_record(
                    "train.phase_seconds",
                    row["seconds"],
                    shape=pt["spec"],
                    phase=row["phase"],
                    role=row["role"],
                    kind=row["kind"],
                )
            )
    return out


def render_counterflow(points: list[dict[str, Any]]) -> str:
    """Markdown table of the sweep: one row per (phase, role, kind),
    one column per rank count — the compute column shrinking while the
    comm column grows is the counter-flow read directly."""
    from repro.obs.attrib import PHASES

    specs = [pt["spec"] for pt in points]
    cells: dict[tuple[str, str, str], dict[str, float]] = {}
    for pt in points:
        for row in pt["rows"]:
            key = (row["phase"], row["role"], row["kind"])
            cells.setdefault(key, {})[pt["spec"]] = row["seconds"]
    header = "| phase | role | kind | " + " | ".join(specs) + " |"
    sep = "|" + "---|" * (3 + len(specs))
    lines = [header, sep]
    role_order = {"master": 0, "worker_mean": 1}
    kind_order = {"compute": 0, "comm": 1, "recovery": 2}
    phase_order = {p: i for i, p in enumerate(PHASES)}
    for phase, role, kind in sorted(
        cells,
        key=lambda k: (
            phase_order.get(k[0], len(phase_order)),
            role_order.get(k[1], 9),
            kind_order.get(k[2], 9),
        ),
    ):
        vals = cells[(phase, role, kind)]
        rendered = " | ".join(
            f"{vals[s]:.4f}" if s in vals else "-" for s in specs
        )
        lines.append(f"| {phase} | {role} | {kind} | {rendered} |")
    return "\n".join(lines)
