"""Section II landscape: HF vs L-BFGS vs serial/parallel SGD.

The paper's related-work claims, measured on real (scaled) data:

* second-order batch methods (HF, L-BFGS) "compute the gradient over all
  of the data ... and therefore are much easier to parallelize";
* one-shot parameter-averaging parallel SGD degrades on non-convex DNNs;
* gradient-synchronous parallel SGD moves orders of magnitude more bytes
  per epoch than HF ("large communications costs in passing the gradient
  vectors from worker machines back to the master").
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.harness import render_table
from repro.hf import FrameSource, HFConfig, HessianFreeOptimizer
from repro.nn import (
    DNN,
    CrossEntropyLoss,
    LBFGSConfig,
    SGDConfig,
    lbfgs_train,
    parameter_averaging_sgd,
    sgd_train,
    sync_sgd_comm_cost,
)
from repro.speech import CorpusConfig, build_corpus

CFG = CorpusConfig(hours=50, scale=1.5e-4, context=2, seed=55)
PASSES = 6


def run_landscape():
    corpus = build_corpus(CFG)
    x, y = corpus.frame_data()
    hx, hy = corpus.heldout_frame_data()
    net = DNN([CFG.input_dim, 48, corpus.n_states])
    theta0 = net.init_params(0)
    ce = CrossEntropyLoss()

    out = {}
    hf = HessianFreeOptimizer(
        FrameSource(net, ce, x, y, hx, hy, curvature_fraction=0.03),
        HFConfig(max_iterations=PASSES),
    ).run(theta0)
    out["HF"] = hf.heldout_trajectory[-1]

    lb = lbfgs_train(net, theta0, x, y, ce, LBFGSConfig(max_iterations=PASSES),
                     heldout=(hx, hy))
    out["L-BFGS"] = lb.losses[-1]

    serial = sgd_train(net, theta0, x, y, ce,
                       SGDConfig(epochs=PASSES, learning_rate=0.1),
                       heldout=(hx, hy))
    out["serial SGD"] = serial.heldout_losses[-1]

    avg = parameter_averaging_sgd(
        net, theta0, x, y, ce, 8, SGDConfig(epochs=PASSES, learning_rate=0.1),
        heldout=(hx, hy),
    )
    out["param-avg SGD (8w)"] = avg.heldout_losses[-1]
    return out


def test_optimizer_landscape(benchmark):
    out = benchmark.pedantic(run_landscape, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["optimizer", "held-out loss after ~6 data passes"],
            [[k, v] for k, v in out.items()],
            title="Section II optimizer landscape",
        )
    )
    cc = sync_sgd_comm_cost(41_000_000, 18_000_000, batch_size=512)
    print(
        f"per-epoch reduction volume: sync-SGD {cc.sgd_bytes / 1e12:.1f} TB "
        f"vs HF {cc.hf_bytes / 1e9:.1f} GB ({cc.ratio:.0f}x)"
    )
    # second-order methods learn (down from the init loss)
    assert out["HF"] < out["param-avg SGD (8w)"]
    # one-shot averaging trails serial SGD (the non-convexity failure)
    assert out["param-avg SGD (8w)"] > out["serial SGD"]
    # HF's communication economy at 50h/41M scale
    assert cc.ratio > 100
