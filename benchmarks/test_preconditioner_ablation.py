"""Preconditioner ablation: the extension the paper explicitly omits.

"Our implementation of Hessian-free optimization ... currently does not
use a preconditioner [25]."  We implement the Martens-style diagonal and
quantify what was left on the table: on a real training run, PCG reaches
the same held-out loss with fewer CG iterations (fewer curvature
products = fewer reductions = less communication at scale).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.harness import render_table
from repro.hf import (
    FrameSource,
    HFConfig,
    HessianFreeOptimizer,
    gradient_squared_preconditioner,
)
from repro.nn import DNN, CrossEntropyLoss
from repro.speech import CorpusConfig, build_corpus

CFG = CorpusConfig(hours=50, scale=1.5e-4, context=2, seed=44)
HF_CFG = HFConfig(max_iterations=6)


def run_ablation():
    corpus = build_corpus(CFG)
    x, y = corpus.frame_data()
    hx, hy = corpus.heldout_frame_data()
    net = DNN([CFG.input_dim, 48, corpus.n_states])
    theta0 = net.init_params(0)

    def train(precond):
        src = FrameSource(
            net, CrossEntropyLoss(), x, y, hx, hy, curvature_fraction=0.03, seed=5
        )
        opt = HessianFreeOptimizer(src, HF_CFG, precond_builder=precond)
        return opt.run(theta0)

    return train(None), train(gradient_squared_preconditioner())


def test_preconditioner_ablation(benchmark):
    plain, pre = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    cg_plain = sum(it.cg_iterations for it in plain.iterations)
    cg_pre = sum(it.cg_iterations for it in pre.iterations)
    print()
    print(
        render_table(
            ["variant", "total CG iters", "final held-out"],
            [
                ["no preconditioner (paper)", cg_plain, plain.heldout_trajectory[-1]],
                ["Martens diagonal (extension)", cg_pre, pre.heldout_trajectory[-1]],
            ],
            title="Preconditioner ablation",
        )
    )
    # both converge; quality comparable
    assert plain.heldout_trajectory[-1] < plain.heldout_trajectory[0]
    assert pre.heldout_trajectory[-1] < pre.heldout_trajectory[0]
    assert pre.heldout_trajectory[-1] < 1.3 * plain.heldout_trajectory[-1]
    # preconditioning must not blow up CG work; typically it reduces it
    assert cg_pre <= 1.3 * cg_plain
