"""COMM ablation (Section V-B): socket-style serial broadcast vs
MPI_Bcast tree collectives, at paper scale.

"This weight-synchronization step was converted to rely upon MPI;
performance was improved by using the broadcast (MPI_Bcast) mechanism."
Asserted: at 1024+ ranks with a 41 M-parameter model, serial root sends
are decisively slower end-to-end, and the gap comes from the weight-sync
collective specifically.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import PAPER_SCRIPT

from repro.bgq import RunShape
from repro.dist import SimJobConfig, simulate_training
from repro.harness import default_workload, render_table


def run_ablation():
    wl = default_workload(50.0)
    out = {}
    for alg in ("binomial", "serial"):
        cfg = SimJobConfig(
            shape=RunShape.parse("1024-1-64"),
            workload=wl,
            script=PAPER_SCRIPT,
            bcast_algorithm=alg,
        )
        out[alg] = simulate_training(cfg)
    return out


def test_comm_upgrade_ablation(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    rows = []
    for alg, res in out.items():
        sync = res.mean_worker_breakdown().collective.get("sync_weights", 0.0)
        rows.append([alg, res.per_iteration_seconds, sync])
    print(
        render_table(
            ["bcast algorithm", "per-iter (s)", "worker sync_weights (s)"],
            rows,
            title="COMM ablation: sockets (serial sends) -> MPI_Bcast",
        )
    )
    t_tree = out["binomial"].per_iteration_seconds
    t_serial = out["serial"].per_iteration_seconds
    assert t_serial > 1.2 * t_tree
    # the regression localizes to broadcast-shaped phases
    w_tree = out["binomial"].mean_worker_breakdown()
    w_serial = out["serial"].mean_worker_breakdown()
    bcast_tree = w_tree.collective["sync_weights"] + w_tree.collective["cg_bcast"]
    bcast_serial = (
        w_serial.collective["sync_weights"] + w_serial.collective["cg_bcast"]
    )
    assert bcast_serial > 2 * bcast_tree
