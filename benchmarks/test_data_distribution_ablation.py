"""DATA ablation: fixing the master's growing load_data bottleneck.

Figures 2/4 show the master's point-to-point ``load_data`` time growing
with rank count — a consequence of the paper's "simple one-layer
architecture, with one master and many workers."  We implement the two
obvious fixes and measure them at paper scale:

* **staged** (two-level relay through stager workers) — the intuitive
  fix that *does not work*: the master still pushes every byte through
  its own NIC, so egress bandwidth binds either way;
* **parallel_io** (workers read shards from the parallel filesystem
  through the I/O nodes) — the fix that works, eliminating the master
  relay entirely.

A negative result for the intuitive fix is exactly the kind of thing a
simulation substrate is for.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import PAPER_SCRIPT

from repro.bgq import RunShape
from repro.dist import SimJobConfig, simulate_training
from repro.harness import default_workload, render_table


def run_ablation():
    wl = default_workload(50.0)
    out = {}
    for mode in ("master", "staged", "parallel_io"):
        cfg = SimJobConfig(
            shape=RunShape.parse("4096-4-16"),
            workload=wl,
            script=PAPER_SCRIPT.truncated(1),
            load_data_mode=mode,
        )
        out[mode] = simulate_training(cfg)
    return out


def test_data_distribution_ablation(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    rows = []
    for mode, res in out.items():
        mb = res.master_breakdown()
        wb = res.worker_breakdown(5)
        rows.append(
            [
                mode,
                mb.p2p.get("load_data", 0.0),
                wb.p2p.get("load_data", 0.0) + wb.compute.get("load_data", 0.0),
                res.load_data_seconds,
            ]
        )
    print(
        render_table(
            ["mode", "master p2p load_data (s)", "worker load_data (s)", "until master free (s)"],
            rows,
            title="DATA ablation at 4096 ranks (50-hour corpus)",
        )
    )
    master_p2p = {
        m: r.master_breakdown().p2p.get("load_data", 0.0) for m, r in out.items()
    }
    # the intuitive staged relay does NOT relieve the master: its NIC
    # egress (total bytes / injection bandwidth) binds in both modes
    assert master_p2p["staged"] > 0.8 * master_p2p["master"]
    # parallel I/O eliminates the master's distribution role entirely
    assert master_p2p["parallel_io"] == 0.0
    assert out["parallel_io"].load_data_seconds < 0.1 * max(
        out["master"].load_data_seconds, 1e-9
    )
