"""CONV: the paper's "no loss in accuracy" claim plus second-order
quality, on real (scaled-down) synthetic speech.

* distributed HF (threaded backend) reproduces the serial reference
  trajectory to float tolerance at several worker counts — the headline
  parity claim;
* HF makes monotone held-out progress with zero learning-rate tuning and
  lands in the same quality regime as a tuned serial SGD at matched
  passes (the paper never claims HF beats serial SGD per pass — Section
  II concedes the opposite can hold; HF's win is parallelizability);
* the curvature-fraction knob (paper: "about 1% to 3%") is swept to show
  convergence is insensitive within that band (the design-choice
  ablation DESIGN.md calls out).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from repro.dist import make_frame_shards, train_threaded_hf
from repro.harness import render_table
from repro.hf import FrameSource, HFConfig, HessianFreeOptimizer
from repro.nn import DNN, CrossEntropyLoss, SGDConfig, frame_error_count, sgd_train
from repro.speech import CorpusConfig, build_corpus

CFG = CorpusConfig(hours=50, scale=2e-4, context=2, seed=33)
HF_CFG = HFConfig(max_iterations=6)


def run_conv():
    corpus = build_corpus(CFG)
    x, y = corpus.frame_data()
    hx, hy = corpus.heldout_frame_data()
    net = DNN([CFG.input_dim, 48, corpus.n_states])
    theta0 = net.init_params(0)
    ce = CrossEntropyLoss()

    serial = HessianFreeOptimizer(
        FrameSource(net, ce, x, y, hx, hy, curvature_fraction=0.02, seed=7), HF_CFG
    ).run(theta0)

    lens = [u.n_frames for u in corpus.train_utts]
    dist_runs = {}
    for workers in (2, 4):
        shards = make_frame_shards(x, y, hx, hy, lens, workers)
        dist_runs[workers] = train_threaded_hf(
            net, ce, shards, theta0, HF_CFG, curvature_fraction=0.02, seed=7
        )

    sgd = sgd_train(
        net, theta0, x, y, ce,
        SGDConfig(epochs=6, batch_size=256, learning_rate=0.05),
        heldout=(hx, hy),
    )

    sweep = {}
    for frac in (0.01, 0.03, 0.10):
        res = HessianFreeOptimizer(
            FrameSource(net, ce, x, y, hx, hy, curvature_fraction=frac, seed=7),
            HF_CFG,
        ).run(theta0)
        sweep[frac] = res.heldout_trajectory[-1]

    err = frame_error_count(net.logits(serial.theta, hx), hy) / len(hy)
    err0 = frame_error_count(net.logits(theta0, hx), hy) / len(hy)
    return serial, dist_runs, sgd, sweep, err0, err


def test_convergence_parity(benchmark):
    serial, dist_runs, sgd, sweep, err0, err = benchmark.pedantic(
        run_conv, rounds=1, iterations=1
    )
    print()
    rows = [["serial HF", f"{serial.heldout_trajectory[-1]:.4f}"]]
    for w, res in dist_runs.items():
        rows.append([f"distributed HF ({w} workers)", f"{res.heldout_trajectory[-1]:.4f}"])
    rows.append(["SGD (budget-matched)", f"{sgd.heldout_losses[-1]:.4f}"])
    for frac, v in sweep.items():
        rows.append([f"HF curvature fraction {frac:g}", f"{v:.4f}"])
    print(render_table(["trainer", "final held-out loss"], rows, title="CONV"))
    print(f"frame error: {err0:.3f} (init) -> {err:.3f} (HF)")

    # "no loss in accuracy": distributed == serial to float tolerance
    for res in dist_runs.values():
        assert np.allclose(
            serial.heldout_trajectory, res.heldout_trajectory, rtol=1e-8
        )
    # HF makes monotone progress without any tuning...
    traj = serial.heldout_trajectory
    assert all(b < a for a, b in zip(traj, traj[1:]))
    # ...and lands in the same quality regime as tuned SGD at matched
    # passes (within 2x; serial SGD *can* win per pass, per Section II)
    assert traj[-1] < 2.0 * sgd.heldout_losses[-1]
    # accuracy improves
    assert err < err0
    # curvature fraction in the paper's 1-3% band is not critical
    vals = list(sweep.values())
    assert max(vals) - min(vals) < 0.3 * serial.heldout_trajectory[0]
