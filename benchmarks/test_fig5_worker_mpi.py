"""Figure 5: worker MPI time, collective vs point-to-point, three configs.

Paper shapes asserted:

* worker MPI time is almost entirely collective (weight broadcast
  participation, gradient/curvature reductions); its only p2p is the
  one-time load_data receive;
* straggler coupling: fast workers accumulate wait time inside
  collectives (cg_bcast wait while the slowest curvature product
  finishes), so collective time per worker is far above the pure wire
  cost.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import breakdown_runs

from repro.dist.timeline import ordered_sum
from repro.harness import render_mpi_split


def test_fig5_worker_mpi(benchmark):
    runs = benchmark.pedantic(breakdown_runs, rounds=1, iterations=1)
    print()
    for cb in runs:
        print(
            render_mpi_split(
                cb.worker_mean.collective,
                cb.worker_mean.p2p,
                title=f"Fig 5 [{cb.label}] mean worker MPI time (s)",
            )
        )
        print()

    for cb in runs:
        w = cb.worker_mean
        coll = ordered_sum(w.collective)
        p2p = ordered_sum(w.p2p)
        # collectives dominate worker MPI time
        assert coll > p2p
        # the expected functions appear
        assert "sync_weights" in w.collective
        assert "reduce_gradient" in w.collective
        assert "cg_bcast" in w.collective
        assert "load_data" in w.p2p
