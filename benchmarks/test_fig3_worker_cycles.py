"""Figure 3: worker-process cycle breakdown per function, three configs.

Paper shapes asserted:

* "as the MPI ranks increase, the computation time decreases (such as
  gradient_loss)";
* "for other functions such as worker_curvature_product, the computation
  time can vary ... the algorithm randomly selects a small percentage of
  the data" — the across-worker spread of curvature time is visible;
* compute cycles are mostly committed + pipeline stalls (GEMM class),
  not IU-empty.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import breakdown_runs

from repro.harness import render_cycles


def test_fig3_worker_cycles(benchmark):
    runs = benchmark.pedantic(breakdown_runs, rounds=1, iterations=1)
    print()
    for cb in runs:
        print(render_cycles(cb.worker_cycles, title=f"Fig 3 [{cb.label}] worker cycles"))
        lo, hi = cb.worker_spread["worker_curvature_product"]
        print(f"  worker_curvature_product spread across workers: {lo:.2f}s .. {hi:.2f}s")
        print()

    by_label = {cb.label: cb for cb in runs}
    ordered = [by_label[l] for l in ("1024-1-64", "2048-2-32", "4096-4-16")]
    # per-worker gradient compute shrinks as ranks grow
    grads = [cb.worker_mean.compute["gradient_loss"] for cb in ordered]
    assert grads[0] > grads[1] > grads[2]
    # curvature-product variance across workers is nonzero in every config
    for cb in runs:
        lo, hi = cb.worker_spread["worker_curvature_product"]
        assert hi > lo > 0
    # worker compute is GEMM-class: committed dominates IU-empty
    for cb in runs:
        g = cb.worker_cycles["gradient_loss"]
        assert g.committed > 3 * g.iu_empty
