"""Figure 1(a): execution time per configuration, 50-hour data, 1 rack.

Paper shapes asserted:

* more OpenMP threads per node helps (1024-1-16 > 1024-1-32 > 1024-1-64);
* at full 64-thread node occupancy, "2048-2-32 is slightly better than
  4096-4-16 which is better than 1024-1-64".
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import PAPER_SCRIPT

from repro.harness import FIG1A_CONFIGS, render_series, run_fig1a


def test_fig1a(benchmark):
    points = benchmark.pedantic(
        lambda: run_fig1a(PAPER_SCRIPT), rounds=1, iterations=1
    )
    hours = {p.label: p.hours for p in points}
    print()
    print(
        render_series(
            [p.label for p in points],
            [p.hours for p in points],
            title="Fig 1(a): 50-hour training time by configuration (hours)",
            unit="h",
        )
    )
    print(
        "paper ordering: 1024-1-16 > 1024-1-32 > 1024-1-64 > 4096-4-16 "
        ">~ 2048-2-32"
    )
    # thread scaling within a rank
    assert hours["1024-1-16"] > hours["1024-1-32"] > hours["1024-1-64"]
    # full-occupancy configuration ordering (Fig 1a's headline)
    assert hours["2048-2-32"] < hours["4096-4-16"] < hours["1024-1-64"]
    # "slightly better": the 2048/4096 gap is small
    assert hours["4096-4-16"] / hours["2048-2-32"] < 1.10
    assert set(hours) == set(FIG1A_CONFIGS)
