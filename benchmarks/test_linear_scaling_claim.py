"""Section VIII scaling claim: "we can achieve speed-ups that scale
linearly up to 4096 processes.  Beyond that, although we see a
significant speed up, the speed improvements are sub-linear."

Regenerated as a fixed-shape (-4-16) rank sweep on the 50-hour workload:
parallel efficiency stays high through 4096 ranks and then falls off as
fixed communication costs stop shrinking while per-worker compute keeps
halving.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import PAPER_SCRIPT

from repro.harness import efficiencies, render_table, run_scaling_claim

RANKS = (256, 1024, 4096, 8192, 16384)


def test_linear_scaling_claim(benchmark):
    points = benchmark.pedantic(
        lambda: run_scaling_claim(PAPER_SCRIPT, ranks=RANKS),
        rounds=1,
        iterations=1,
    )
    effs = efficiencies(points)
    print()
    print(
        render_table(
            ["config", "per-iter (s)", "efficiency vs 256"],
            [
                [p.label, p.per_iteration_seconds, e]
                for p, e in zip(points, effs)
            ],
            title="Scaling claim: linear to 4096, sub-linear beyond",
        )
    )
    by_rank = dict(zip(RANKS, effs))
    # near-linear through 4096
    assert by_rank[1024] > 0.9
    assert by_rank[4096] > 0.8
    # measurably sub-linear beyond 4096 ("significant speedup" remains,
    # but efficiency declines monotonically past the knee)
    assert by_rank[8192] < by_rank[4096]
    assert by_rank[16384] < by_rank[8192]
    assert by_rank[16384] < by_rank[4096] - 0.03
    # still speeding up in absolute terms (not saturated)
    times = [p.per_iteration_seconds for p in points]
    assert times[-1] < times[-3]
