"""Simulator wall-clock benchmarks: DES engine + vmpi hot paths.

Unlike the figure benchmarks, these time the *simulator itself* — the
engine event loop, mailbox matching, and collective fan-out that every
other benchmark rides on.  The same suite is exposed as ``repro perf``;
the committed ``BENCH_sim_vmpi.json`` at the repo root is the published
baseline each PR is compared against.

Asserted here: the virtual results (finish times, message counts) are
bit-identical to the published baseline — a perf run that changes a
simulated number is a correctness bug, not a speedup — and the macro
runs stay within a generous wall-clock envelope so a pathological
regression (e.g. accidental O(n^2) mailbox scan) fails loudly.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.harness.perf import (
    BENCH_FILENAME,
    bench_bcast_fanout,
    bench_macro,
    bench_ping_ring,
    bench_timeout_storm,
    render_perf_text,
    run_perf,
)

BASELINE_PATH = Path(__file__).parent.parent / BENCH_FILENAME

# Macro wall-clock envelope: baseline best_s times this factor.  Wide
# enough for slow CI machines, tight enough to catch a complexity-class
# regression (the pre-overhaul engine was ~4x slower at 4096 ranks).
WALL_BUDGET_FACTOR = 3.0


def _baseline():
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def test_micro_determinism():
    """Each micro benchmark's virtual outcome is run-to-run identical."""
    assert bench_timeout_storm() == bench_timeout_storm()
    assert bench_ping_ring() == bench_ping_ring()
    assert bench_bcast_fanout() == bench_bcast_fanout()


def test_perf_suite(benchmark):
    payload = benchmark.pedantic(run_perf, rounds=1, iterations=1)
    print()
    print(render_perf_text(payload))
    baseline = _baseline()
    if baseline is None:
        return
    for section in ("micro", "macro"):
        for name, base in baseline[section].items():
            got = payload[section][name]
            for key in ("virtual_finish", "messages", "events", "bytes"):
                if key in base:
                    assert got[key] == base[key], (
                        f"{section}/{name}: {key} changed "
                        f"({got[key]!r} != baseline {base[key]!r})"
                    )
    for name, base in baseline["macro"].items():
        got = payload["macro"][name]
        assert got["best_s"] < WALL_BUDGET_FACTOR * base["best_s"], (
            f"macro/{name}: {got['best_s']:.2f}s exceeds "
            f"{WALL_BUDGET_FACTOR}x baseline {base['best_s']:.2f}s"
        )


def test_macro_invariants_against_baseline():
    """One 1024-rank run, checked against the committed baseline without
    the full timed suite — the cheap timeline-preservation gate."""
    baseline = _baseline()
    if baseline is None:
        return
    got = bench_macro("1024-4-16")
    base = baseline["macro"]["1024-4-16"]
    assert got["virtual_finish"] == base["virtual_finish"]
    assert got["messages"] == base["messages"]
