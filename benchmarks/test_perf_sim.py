"""Simulator wall-clock benchmarks: DES engine + vmpi hot paths.

Unlike the figure benchmarks, these time the *simulator itself* — the
engine event loop, mailbox matching, and collective fan-out that every
other benchmark rides on.  The same suite is exposed as ``repro perf``;
the committed ``BENCH_sim_vmpi.json`` at the repo root is the published
baseline each PR is compared against.

Asserted here: the virtual results (finish times, message counts) are
bit-identical to the published baseline — a perf run that changes a
simulated number is a correctness bug, not a speedup — and the macro
runs stay within a generous wall-clock envelope so a pathological
regression (e.g. accidental O(n^2) mailbox scan) fails loudly.

Observability rides the same baseline: the committed ``obs_ratio`` per
macro shape (min-over-rounds walls, obs-attached vs plain, interleaved)
is the published evidence that attaching a :class:`MetricsRegistry`
costs at most 5 % of macro wall-clock, and the metrics the instrumented
run reports (event counts, peak queue depths, outstanding-message HWMs)
are simulated quantities, so they must match the baseline bit-for-bit.
"""

import gc
import json
import multiprocessing
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import ensure_linted

from repro.harness.perf import (
    BENCH_FILENAME,
    bench_bcast_fanout,
    bench_collectives,
    bench_macro,
    bench_macro_obs,
    bench_ping_ring,
    bench_timeout_storm,
    registry_metrics_block,
    render_perf_text,
    run_perf,
    shard_metrics_block,
)

BASELINE_PATH = Path(__file__).parent.parent / BENCH_FILENAME

# Macro wall-clock envelope: baseline best_s times this factor.  Wide
# enough for slow CI machines, tight enough to catch a complexity-class
# regression (the pre-overhaul engine was ~4x slower at 4096 ranks).
WALL_BUDGET_FACTOR = 3.0

# The contract on attached-observability overhead: the *published*
# baseline must demonstrate <= 5 % (regenerating it on a noisy machine
# takes enough interleaved rounds for both legs to catch a quiet one).
OBS_BUDGET_RATIO = 1.05

# Live-run envelope for the same ratio: one noisy in-suite measurement
# cannot re-prove 5 %, but a complexity-class regression in the hooks
# (per-event dict arithmetic, an eager fold) lands well above this.
OBS_PATHOLOGICAL_RATIO = 1.75

# The SPMD fast-path acceptance gate: at 16384 ranks the vector executor
# must beat the per-generator scalar scheduler by at least this factor.
# (Measured headroom is ~40x; 5x survives the noisiest CI machine.)
SPMD_SPEEDUP_FLOOR = 5.0
SPMD_SPEEDUP_SHAPE = "16384-4-16"
SPMD_SCALAR_ANCHOR = "1024-4-16"


def _baseline():
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def test_micro_determinism():
    """Each micro benchmark's virtual outcome is run-to-run identical."""
    assert bench_timeout_storm() == bench_timeout_storm()
    assert bench_ping_ring() == bench_ping_ring()
    assert bench_bcast_fanout() == bench_bcast_fanout()


def test_perf_suite(benchmark):
    payload = benchmark.pedantic(run_perf, rounds=1, iterations=1)
    print()
    print(render_perf_text(payload))
    baseline = _baseline()
    if baseline is None:
        return
    for section in ("micro", "macro"):
        for name, base in baseline[section].items():
            got = payload[section][name]
            for key in ("virtual_finish", "messages", "events", "bytes"):
                if key in base:
                    assert got[key] == base[key], (
                        f"{section}/{name}: {key} changed "
                        f"({got[key]!r} != baseline {base[key]!r})"
                    )
    for name, base in baseline["macro"].items():
        got = payload["macro"][name]
        assert got["best_s"] < WALL_BUDGET_FACTOR * base["best_s"], (
            f"macro/{name}: {got['best_s']:.2f}s exceeds "
            f"{WALL_BUDGET_FACTOR}x baseline {base['best_s']:.2f}s"
        )
        if "obs_ratio" in got:  # shapes above the obs-interleave cap skip it
            assert got["obs_ratio"] < OBS_PATHOLOGICAL_RATIO, (
                f"macro/{name}: obs-attached run cost {got['obs_ratio']:.2f}x "
                f"the plain run — the hooks regressed far past the 5% budget"
            )


def test_sim_collectives():
    """The PR-4 acceptance criterion at paper scale: with auto algorithm
    selection and bucketed gradient overlap enabled, the 1024-rank run's
    simulated gradient+sync time drops >= 20 % against the binomial/serial
    baseline at large payloads — while small messages still select the
    binomial tree.  The gradsync seconds and selected algorithms are
    virtual quantities, so they must also match the committed baseline
    bit-for-bit."""
    ensure_linted()
    got = bench_collectives("1024-4-16")
    assert got["win_vs_binomial"] >= 0.20
    assert got["win_vs_serial"] >= 0.20
    assert got["gradsync_overlap_s"] < got["gradsync_binomial_s"]
    small = min(got["crossover"], key=lambda r: r["nbytes"])
    large = max(got["crossover"], key=lambda r: r["nbytes"])
    assert small["bcast"] == "binomial" and small["reduce"] == "binomial"
    assert large["reduce"] in ("ring", "rabenseifner", "torus")
    baseline = _baseline()
    if baseline is None or "collectives" not in baseline:
        return
    base = baseline["collectives"]["sweep"]
    for key in (
        "gradsync_binomial_s",
        "gradsync_serial_s",
        "gradsync_overlap_s",
        "win_vs_binomial",
        "win_vs_serial",
        "crossover",
    ):
        assert got[key] == base[key], (
            f"collectives/sweep: {key} changed "
            f"({got[key]!r} != baseline {base[key]!r})"
        )


def _best_wall(fn, repeats=2):
    """Min-over-repeats wall clock with the collector parked (the same
    protocol as the harness timer)."""
    was_enabled = gc.isenabled()
    walls = []
    try:
        gc.disable()
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            walls.append(time.perf_counter() - t0)
            gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return min(walls)


def _virtual(entry):
    """The executor-invariant portion of a bench result (the ``path``
    key names which executor ran — the one field that *should* differ
    between a scalar and a vector leg)."""
    return {k: v for k, v in entry.items() if k != "path"}


@pytest.mark.parametrize("auto_overlap", [False, True], ids=["plain", "auto+overlap"])
def test_vector_spmd_speedup_at_16k(auto_overlap):
    """The tentpole acceptance gate: at 16384 ranks the SPMD vector fast
    path is >= 5x faster than the scalar per-generator scheduler — for
    the plain fixed-algorithm run and for the paper configuration
    (auto-selected collectives + bucketed gradient overlap), which this
    PR makes vector-eligible.

    Running the scalar path at 16k directly would take most of a minute,
    so its cost is extrapolated linearly from a live 1024-rank scalar
    run.  The extrapolation is *conservative*: scalar event count grows
    O(p log p) and the heap O(log(events)) on top, so linear-in-p
    understates the true 16k scalar wall — the measured ratio is ~40x
    against the understated denominator's ~8x requirement.
    """
    anchor_ranks = int(SPMD_SCALAR_ANCHOR.split("-")[0])
    gate_ranks = int(SPMD_SPEEDUP_SHAPE.split("-")[0])
    # Same shape, both paths: the numbers the gate compares are walls
    # for *identical* virtual work.
    scalar_anchor = bench_macro(
        SPMD_SCALAR_ANCHOR, vector=False, auto_overlap=auto_overlap
    )
    vector_anchor = bench_macro(
        SPMD_SCALAR_ANCHOR, vector=True, auto_overlap=auto_overlap
    )
    assert scalar_anchor["path"] == "scalar"
    assert vector_anchor["path"] == "vector"
    assert _virtual(scalar_anchor) == _virtual(vector_anchor), (
        "vector fast path diverged from the scalar scheduler at "
        f"{SPMD_SCALAR_ANCHOR}: {vector_anchor} != {scalar_anchor}"
    )
    scalar_wall = _best_wall(
        lambda: bench_macro(
            SPMD_SCALAR_ANCHOR, vector=False, auto_overlap=auto_overlap
        )
    )
    vector_wall = _best_wall(
        lambda: bench_macro(
            SPMD_SPEEDUP_SHAPE, vector=True, auto_overlap=auto_overlap
        )
    )
    scalar_extrapolated = scalar_wall * (gate_ranks // anchor_ranks)
    speedup = scalar_extrapolated / vector_wall
    leg = "auto+overlap" if auto_overlap else "plain"
    print(
        f"\nSPMD speedup at {SPMD_SPEEDUP_SHAPE} [{leg}]: {speedup:.1f}x "
        f"(vector {vector_wall:.3f}s vs scalar extrapolated "
        f"{scalar_extrapolated:.3f}s from {scalar_wall:.3f}s @ "
        f"{SPMD_SCALAR_ANCHOR})"
    )
    assert speedup >= SPMD_SPEEDUP_FLOOR, (
        f"SPMD fast path speedup {speedup:.2f}x at {SPMD_SPEEDUP_SHAPE} "
        f"[{leg}] is below the {SPMD_SPEEDUP_FLOOR}x acceptance floor"
    )
    baseline = _baseline()
    name = (
        f"{SPMD_SPEEDUP_SHAPE}+auto+overlap" if auto_overlap else SPMD_SPEEDUP_SHAPE
    )
    if baseline and name in baseline.get("macro", {}):
        got = bench_macro(
            SPMD_SPEEDUP_SHAPE, vector=True, auto_overlap=auto_overlap
        )
        base = baseline["macro"][name]
        assert got["virtual_finish"] == base["virtual_finish"]
        assert got["messages"] == base["messages"]


def test_macro_invariants_against_baseline():
    """One 1024-rank run, checked against the committed baseline without
    the full timed suite — the cheap timeline-preservation gate."""
    baseline = _baseline()
    if baseline is None:
        return
    got = bench_macro("1024-4-16")
    base = baseline["macro"]["1024-4-16"]
    assert got["virtual_finish"] == base["virtual_finish"]
    assert got["messages"] == base["messages"]


def test_baseline_obs_overhead_within_budget():
    """The committed baseline is the published proof that attaching a
    metrics registry costs <= 5 % of macro wall-clock."""
    baseline = _baseline()
    if baseline is None:
        return
    for name, base in baseline["macro"].items():
        if "obs_ratio" not in base:  # above the obs-interleave cap
            continue
        assert base["obs_ratio"] <= OBS_BUDGET_RATIO, (
            f"macro/{name}: committed obs_ratio {base['obs_ratio']:.3f} "
            f"exceeds the {OBS_BUDGET_RATIO}x budget — optimize the hooks "
            f"or regenerate the baseline on a quieter machine"
        )


def test_obs_metrics_match_baseline():
    """The instrumented run's metrics are simulated quantities — event
    counts, peak queue depths, per-pair outstanding HWMs — so a fresh
    obs-attached run must reproduce the committed baseline's ``metrics``
    block exactly, on any machine."""
    baseline = _baseline()
    if baseline is None:
        return
    sink = []
    got = bench_macro_obs("1024-4-16", registry_sink=sink)
    base = baseline["macro"]["1024-4-16"]
    assert got["virtual_finish"] == base["virtual_finish"]
    assert registry_metrics_block(sink[-1]) == base["metrics"]


def _obs_legs():
    """Fast-path obs-overhead legs: vectorized always; sharded where the
    platform can fork."""
    legs = [("vector", {"vector": True})]
    if "fork" in multiprocessing.get_all_start_methods():
        legs.append(("shards4", {"vector": True, "shards": 4}))
        legs.append(
            ("shards4+spec", {"vector": True, "shards": 4, "speculate": True})
        )
    return legs


SPECULATE_SHAPE = "262144-4-16"
SPECULATE_SHARDS = 4


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded engine needs fork-capable multiprocessing",
)
def test_speculative_windows_reduce_stalls_at_262k():
    """The optimistic-window acceptance gate on the 262k macro shape:
    with speculation on, ``sim.shard.window_stalls`` (now counting only
    windows that actually rolled back) drops below the conservative
    protocol's stall count — with zero divergence in any virtual
    result.  The rollback count itself lands in the BENCH json
    ``shard_metrics`` block of sharded runs; here it is printed."""
    results = {}
    for speculate in (False, True):
        sink = []
        res = bench_macro_obs(
            SPECULATE_SHAPE,
            registry_sink=sink,
            shards=SPECULATE_SHARDS,
            speculate=speculate,
        )
        results[speculate] = (res, shard_metrics_block(sink[-1]))
    cons, cons_sm = results[False]
    spec, spec_sm = results[True]
    assert cons["path"] == "vector+sharded" and spec["path"] == "speculative"
    assert _virtual(cons) == _virtual(spec), (
        f"speculation changed the virtual outcome: {spec} != {cons}"
    )
    print(
        f"\nshard windows at {SPECULATE_SHAPE} (shards={SPECULATE_SHARDS}): "
        f"conservative stalls={cons_sm['window_stalls']}, speculative "
        f"stalls={spec_sm['window_stalls']} "
        f"(rollbacks={spec_sm.get('rollbacks', 0)}, "
        f"windows={spec_sm.get('speculated_windows', 0)})"
    )
    assert cons_sm["window_stalls"] > 0, (
        "the conservative protocol reported no stalls at 262k — the "
        "gate is vacuous; pick a shape with real cross-shard spread"
    )
    assert spec_sm["window_stalls"] < cons_sm["window_stalls"], (
        f"speculative windows did not reduce stalls: "
        f"{spec_sm['window_stalls']} vs conservative "
        f"{cons_sm['window_stalls']}"
    )
    assert spec_sm.get("speculated_windows", 0) > 0


def test_obs_overhead_vector_and_sharded_paths():
    """The obs budget covers every execution path, not just the scalar
    scheduler: attach a registry to a vectorized 1024-rank macro run and
    to a sharded (``shards=4``) one, and bound the live obs-attached /
    plain wall ratio.  (The committed <= 5 % proof lives in the
    baseline; the live gate catches a complexity-class regression in
    the bulk-surface hooks on either path.)"""
    for name, kw in _obs_legs():
        plain = bench_macro("1024-4-16", **kw)
        attached = bench_macro_obs("1024-4-16", **kw)
        assert attached == plain, (
            f"{name}: attaching obs changed the virtual outcome "
            f"({attached} != {plain})"
        )
        plain_wall = _best_wall(lambda: bench_macro("1024-4-16", **kw))
        obs_wall = _best_wall(lambda: bench_macro_obs("1024-4-16", **kw))
        ratio = obs_wall / plain_wall
        print(f"\nobs ratio [{name}]: {ratio:.3f} "
              f"(obs {obs_wall:.3f}s / plain {plain_wall:.3f}s)")
        assert ratio < OBS_PATHOLOGICAL_RATIO, (
            f"{name}: obs-attached macro cost {ratio:.2f}x the plain run "
            f"— the fast-path hooks regressed far past the 5% budget"
        )
