"""Simulator wall-clock benchmarks: DES engine + vmpi hot paths.

Unlike the figure benchmarks, these time the *simulator itself* — the
engine event loop, mailbox matching, and collective fan-out that every
other benchmark rides on.  The same suite is exposed as ``repro perf``;
the committed ``BENCH_sim_vmpi.json`` at the repo root is the published
baseline each PR is compared against.

Asserted here: the virtual results (finish times, message counts) are
bit-identical to the published baseline — a perf run that changes a
simulated number is a correctness bug, not a speedup — and the macro
runs stay within a generous wall-clock envelope so a pathological
regression (e.g. accidental O(n^2) mailbox scan) fails loudly.

Observability rides the same baseline: the committed ``obs_ratio`` per
macro shape (min-over-rounds walls, obs-attached vs plain, interleaved)
is the published evidence that attaching a :class:`MetricsRegistry`
costs at most 5 % of macro wall-clock, and the metrics the instrumented
run reports (event counts, peak queue depths, outstanding-message HWMs)
are simulated quantities, so they must match the baseline bit-for-bit.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import ensure_linted

from repro.harness.perf import (
    BENCH_FILENAME,
    bench_bcast_fanout,
    bench_collectives,
    bench_macro,
    bench_macro_obs,
    bench_ping_ring,
    bench_timeout_storm,
    registry_metrics_block,
    render_perf_text,
    run_perf,
)

BASELINE_PATH = Path(__file__).parent.parent / BENCH_FILENAME

# Macro wall-clock envelope: baseline best_s times this factor.  Wide
# enough for slow CI machines, tight enough to catch a complexity-class
# regression (the pre-overhaul engine was ~4x slower at 4096 ranks).
WALL_BUDGET_FACTOR = 3.0

# The contract on attached-observability overhead: the *published*
# baseline must demonstrate <= 5 % (regenerating it on a noisy machine
# takes enough interleaved rounds for both legs to catch a quiet one).
OBS_BUDGET_RATIO = 1.05

# Live-run envelope for the same ratio: one noisy in-suite measurement
# cannot re-prove 5 %, but a complexity-class regression in the hooks
# (per-event dict arithmetic, an eager fold) lands well above this.
OBS_PATHOLOGICAL_RATIO = 1.75


def _baseline():
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def test_micro_determinism():
    """Each micro benchmark's virtual outcome is run-to-run identical."""
    assert bench_timeout_storm() == bench_timeout_storm()
    assert bench_ping_ring() == bench_ping_ring()
    assert bench_bcast_fanout() == bench_bcast_fanout()


def test_perf_suite(benchmark):
    payload = benchmark.pedantic(run_perf, rounds=1, iterations=1)
    print()
    print(render_perf_text(payload))
    baseline = _baseline()
    if baseline is None:
        return
    for section in ("micro", "macro"):
        for name, base in baseline[section].items():
            got = payload[section][name]
            for key in ("virtual_finish", "messages", "events", "bytes"):
                if key in base:
                    assert got[key] == base[key], (
                        f"{section}/{name}: {key} changed "
                        f"({got[key]!r} != baseline {base[key]!r})"
                    )
    for name, base in baseline["macro"].items():
        got = payload["macro"][name]
        assert got["best_s"] < WALL_BUDGET_FACTOR * base["best_s"], (
            f"macro/{name}: {got['best_s']:.2f}s exceeds "
            f"{WALL_BUDGET_FACTOR}x baseline {base['best_s']:.2f}s"
        )
        assert got["obs_ratio"] < OBS_PATHOLOGICAL_RATIO, (
            f"macro/{name}: obs-attached run cost {got['obs_ratio']:.2f}x "
            f"the plain run — the hooks regressed far past the 5% budget"
        )


def test_sim_collectives():
    """The PR-4 acceptance criterion at paper scale: with auto algorithm
    selection and bucketed gradient overlap enabled, the 1024-rank run's
    simulated gradient+sync time drops >= 20 % against the binomial/serial
    baseline at large payloads — while small messages still select the
    binomial tree.  The gradsync seconds and selected algorithms are
    virtual quantities, so they must also match the committed baseline
    bit-for-bit."""
    ensure_linted()
    got = bench_collectives("1024-4-16")
    assert got["win_vs_binomial"] >= 0.20
    assert got["win_vs_serial"] >= 0.20
    assert got["gradsync_overlap_s"] < got["gradsync_binomial_s"]
    small = min(got["crossover"], key=lambda r: r["nbytes"])
    large = max(got["crossover"], key=lambda r: r["nbytes"])
    assert small["bcast"] == "binomial" and small["reduce"] == "binomial"
    assert large["reduce"] in ("ring", "rabenseifner", "torus")
    baseline = _baseline()
    if baseline is None or "collectives" not in baseline:
        return
    base = baseline["collectives"]["sweep"]
    for key in (
        "gradsync_binomial_s",
        "gradsync_serial_s",
        "gradsync_overlap_s",
        "win_vs_binomial",
        "win_vs_serial",
        "crossover",
    ):
        assert got[key] == base[key], (
            f"collectives/sweep: {key} changed "
            f"({got[key]!r} != baseline {base[key]!r})"
        )


def test_macro_invariants_against_baseline():
    """One 1024-rank run, checked against the committed baseline without
    the full timed suite — the cheap timeline-preservation gate."""
    baseline = _baseline()
    if baseline is None:
        return
    got = bench_macro("1024-4-16")
    base = baseline["macro"]["1024-4-16"]
    assert got["virtual_finish"] == base["virtual_finish"]
    assert got["messages"] == base["messages"]


def test_baseline_obs_overhead_within_budget():
    """The committed baseline is the published proof that attaching a
    metrics registry costs <= 5 % of macro wall-clock."""
    baseline = _baseline()
    if baseline is None:
        return
    for name, base in baseline["macro"].items():
        assert base["obs_ratio"] <= OBS_BUDGET_RATIO, (
            f"macro/{name}: committed obs_ratio {base['obs_ratio']:.3f} "
            f"exceeds the {OBS_BUDGET_RATIO}x budget — optimize the hooks "
            f"or regenerate the baseline on a quieter machine"
        )


def test_obs_metrics_match_baseline():
    """The instrumented run's metrics are simulated quantities — event
    counts, peak queue depths, per-pair outstanding HWMs — so a fresh
    obs-attached run must reproduce the committed baseline's ``metrics``
    block exactly, on any machine."""
    baseline = _baseline()
    if baseline is None:
        return
    sink = []
    got = bench_macro_obs("1024-4-16", registry_sink=sink)
    base = baseline["macro"]["1024-4-16"]
    assert got["virtual_finish"] == base["virtual_finish"]
    assert registry_metrics_block(sink[-1]) == base["metrics"]
