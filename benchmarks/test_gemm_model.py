"""GEMM benchmarks (Section V-A): the tuned-kernel performance model's
headline behaviours, plus a real timing of the explicit blocked GEMM
against numpy's BLAS.

Paper shapes asserted:

* 4 hardware threads/core beat 2 beat 1 (dual issue + shared prefetch);
* the tuned SGEMM beats DGEMM but by well under 2x (QPX has no extra SP
  lanes — the reason SP needed dedicated tuning);
* square "cookie cutter" per-rank core grids are preferred;
* small/odd shapes lose efficiency but degrade gracefully.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from repro.gemm import BlockingPlan, GemmPerfModel, GemmProblem, blocked_gemm
from repro.harness import render_table
from repro.util.rng import spawn


def test_threads_per_core_sweep(benchmark):
    pm = GemmPerfModel()
    p = GemmProblem(4096, 2048, 2048, "sp")

    def sweep():
        return {t: pm.achieved_gflops(p, 16, t) for t in (1, 2, 4)}

    rates = benchmark(sweep)
    print()
    print(
        render_table(
            ["threads/core", "node SGEMM GFLOPS"],
            [[t, g] for t, g in rates.items()],
            title="Sec V-A: thread-level sweep (node peak 204.8 DP GFLOPS)",
        )
    )
    assert rates[1] < rates[2] < rates[4]
    assert rates[4] > 150.0  # near-peak for the tuned kernel


def test_sp_vs_dp(benchmark):
    pm = GemmPerfModel()

    def ratio():
        sp = pm.achieved_gflops(GemmProblem(2048, 2048, 2048, "sp"), 16, 4)
        dp = pm.achieved_gflops(GemmProblem(2048, 2048, 2048, "dp"), 16, 4)
        return sp, dp

    sp, dp = benchmark(ratio)
    print(f"\nSGEMM {sp:.0f} vs DGEMM {dp:.0f} GFLOPS (ratio {sp / dp:.2f})")
    assert 1.0 < sp / dp < 1.5  # not the textbook 2x


def test_square_task_layout_preferred(benchmark):
    pm = GemmPerfModel()

    def effs():
        return {c: pm.parallel_efficiency(c) for c in (2, 4, 8, 16)}

    e = benchmark(effs)
    # square grids (4, 16) get the cookie-cutter bonus relative to trend
    trend_4 = (e[2] + e[8]) / 2
    assert e[4] > trend_4


def test_shape_robustness(benchmark):
    pm = GemmPerfModel()

    def sweep():
        shapes = [(512, 512, 512), (511, 509, 512), (512, 512, 8), (32, 9300, 2048)]
        return [pm.achieved_gflops(GemmProblem(*s, "sp"), 4, 4) for s in shapes]

    rates = benchmark(sweep)
    aligned, odd, short_k, skinny = rates
    assert odd < aligned
    assert short_k < aligned
    assert all(r > 0 for r in rates)  # graceful degradation, never zero


def test_blocked_gemm_real_timing(benchmark):
    """The explicit blocked algorithm is validated and timed against
    BLAS; it is a didactic rendering, so we assert correctness and that
    the benchmark machinery records a real timing (not performance)."""
    rng = spawn(0, "gemm-bench")
    a = rng.standard_normal((96, 96))
    b = rng.standard_normal((96, 96))
    plan = BlockingPlan()

    c = benchmark(lambda: blocked_gemm(a, b, plan))
    assert np.allclose(c, a @ b, atol=1e-9)
