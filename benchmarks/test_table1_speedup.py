"""Table I: BG/Q (4096 MPI ranks) vs the 96-process Intel Xeon cluster,
for cross-entropy and sequence training.

Paper rows:

    50-hour Cross-Entropy:  Xeon 9 h    vs BG/Q 1.3 h  -> 6.9x (12.6x freq-adj)
    50-hour Sequence:       Xeon 18.7 h vs BG/Q 4.19 h -> 4.5x (8.2x freq-adj)

Shapes asserted: BG/Q wins by a high-single-digit factor on CE; the
frequency-adjusted column is exactly speedup x 2.9/1.6; sequence
training is ~2x CE on the Xeon and >2x on BG/Q (so its speedup is
*lower* than CE's, as in the paper); absolute BG/Q hours land in the
paper's order of magnitude.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from common import PAPER_SCRIPT

from repro.harness import render_table, run_table1


def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table1(PAPER_SCRIPT), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["Training data", "Xeon 96 (hrs)", "BG/Q 4096 (hrs)", "Speed Up", "Freq Adj"],
            [
                [r.criterion, r.xeon_hours, r.bgq_hours, r.speedup, r.frequency_adjusted]
                for r in rows
            ],
            title="Table I (paper: 9/1.3=6.9x,12.6x and 18.7/4.19=4.5x,8.2x)",
        )
    )
    ce, seq = rows
    # BG/Q wins decisively on both criteria
    assert ce.speedup > 4.0
    assert seq.speedup > 3.0
    # frequency adjustment column is the paper's arithmetic
    assert ce.frequency_adjusted == pytest.approx(ce.speedup * 2.9 / 1.6)
    # sequence training slows both machines, Xeon by ~2x (18.7/9), and it
    # hits the in-order BG/Q even harder -> lower sequence speedup
    assert 1.5 < seq.xeon_hours / ce.xeon_hours < 3.0
    assert seq.bgq_hours / ce.bgq_hours > 1.5
    assert seq.speedup < ce.speedup
    # absolute scales: BG/Q trains 50h CE in low single-digit hours
    assert ce.bgq_hours < 5.0
    assert ce.xeon_hours > 10.0
