"""Serving saturation baseline: the committed sweep, bit-for-bit.

The ``serve`` section of ``BENCH_sim_vmpi.json`` is pure virtual-time
data — no wall clocks anywhere in the sweep — so unlike the ratio-gated
micro/macro sections it is compared **exactly**: a fresh run of the
same seeded sweep must reproduce every committed number on any machine.
A mismatch means the serving model's timeline changed, which is a
correctness event that must be deliberate (regenerate with
``repro perf --serve --json``), never noise.

Also asserted: the committed curve actually shows the saturation knee
(p99 at overload well above p99 at low load — the plot the operator's
guide walks through), the sweep stays inside a generous wall budget,
and attaching a metrics registry neither changes any virtual outcome
nor costs pathological wall time (the serving collector is scrape-time
only).
"""

import json
import time
from pathlib import Path

import sys

sys.path.insert(0, str(Path(__file__).parent))

from common import ensure_linted

from repro.harness.perf import BENCH_FILENAME
from repro.harness.serving import serve_payload
from repro.obs import MetricsRegistry
from repro.serve import ArrivalSpec, ServeConfig, simulate_serving

BASELINE_PATH = Path(__file__).parent.parent / BENCH_FILENAME

# Full sweep measured ~1 s on a development machine; an order of
# magnitude of headroom still catches a complexity-class regression.
SWEEP_WALL_BUDGET_S = 30.0

# The knee criterion: committed p99 at the worst overload point must be
# at least this multiple of p99 at the lightest load.
KNEE_FACTOR = 2.0

# Live envelope for the obs-attached / plain wall ratio (the committed
# proof of passivity is the bit-identical invariants; this catches a
# hook accidentally added to the serving hot path).
OBS_PATHOLOGICAL_RATIO = 1.75


def _baseline_serve():
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text()).get("serve")


def test_saturation_sweep_matches_baseline_bit_for_bit():
    ensure_linted()
    base = _baseline_serve()
    if base is None:
        return
    t0 = time.perf_counter()
    got = serve_payload(quick=bool(base["quick"]), seed=int(base["seed"]))
    wall = time.perf_counter() - t0
    assert got == base, (
        "serving sweep diverged from the committed baseline — the "
        "serving model's virtual timeline changed; if intentional, "
        "regenerate with 'repro perf --serve --json'"
    )
    assert wall < SWEEP_WALL_BUDGET_S, (
        f"serve sweep took {wall:.1f}s, over the {SWEEP_WALL_BUDGET_S}s budget"
    )


def test_baseline_shows_p99_knee():
    """The committed curve must exhibit saturation: p99 rises steeply
    once offered load crosses capacity, and the overload points shed or
    queue dramatically more than the healthy ones."""
    base = _baseline_serve()
    if base is None:
        return
    rows = sorted(base["saturation"], key=lambda r: r["load"])
    assert rows[0]["load"] < 1.0 < rows[-1]["load"], (
        "baseline sweep must straddle capacity to show the knee"
    )
    p99_low = rows[0]["p99_s"]
    p99_high = max(r["p99_s"] for r in rows)
    assert p99_high >= KNEE_FACTOR * p99_low, (
        f"no p99 knee in the committed sweep: worst p99 {p99_high:.2f}s "
        f"is under {KNEE_FACTOR}x the light-load p99 {p99_low:.2f}s"
    )
    assert rows[-1]["depth_peak"] > rows[0]["depth_peak"], (
        "overload should queue deeper than light load"
    )


def test_obs_attach_is_passive_and_cheap():
    cfg = ServeConfig(
        replicas=4, arrivals=ArrivalSpec(rate=5.0), horizon_s=8.0, seed=5
    )
    plain = simulate_serving(cfg)
    reg = MetricsRegistry()
    attached = simulate_serving(cfg, obs=reg)
    assert attached.invariants() == plain.invariants(), (
        "attaching a metrics registry changed the serving timeline"
    )
    outcomes = {
        rec["labels"]["outcome"]: rec["value"]
        for rec in reg.snapshot()
        if rec["metric"] == "serve.requests"
    }
    assert outcomes["completed"] == plain.completed

    def _wall(fn):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    plain_wall = _wall(lambda: simulate_serving(cfg))
    obs_wall = _wall(lambda: simulate_serving(cfg, obs=MetricsRegistry()))
    ratio = obs_wall / plain_wall
    print(f"\nserve obs ratio: {ratio:.3f} "
          f"(obs {obs_wall:.3f}s / plain {plain_wall:.3f}s)")
    assert ratio < OBS_PATHOLOGICAL_RATIO, (
        f"obs-attached serving run cost {ratio:.2f}x the plain run"
    )
