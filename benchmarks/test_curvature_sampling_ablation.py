"""Curvature-sampling granularity ablation (the Fig-3 variance story).

The paper attributes worker_curvature_product variance to the random
1-3 % sample.  At thousands of workers, *how* the sample is drawn
matters enormously: whole-utterance sampling lets one long utterance
stall every CG product (straggler coupling at each reduction), while
frame-level balanced sampling keeps loads even.  This ablation
quantifies the gap at paper scale — the reason our simulated trainer
defaults to frame sampling (see DESIGN.md).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import PAPER_SCRIPT

from repro.bgq import RunShape
from repro.dist import SimJobConfig, simulate_training
from repro.harness import default_workload, render_table


def run_ablation():
    wl = default_workload(50.0)
    out = {}
    for mode in ("frame", "utterance"):
        cfg = SimJobConfig(
            shape=RunShape.parse("4096-4-16"),
            workload=wl,
            script=PAPER_SCRIPT,
            curvature_sampling=mode,
        )
        out[mode] = simulate_training(cfg)
    return out


def test_curvature_sampling_ablation(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    rows = []
    spreads = {}
    for mode, res in out.items():
        times = np.array(
            [
                res.worker_breakdown(r).compute["worker_curvature_product"]
                for r in np.linspace(1, 4095, 64).astype(int)
            ]
        )
        spreads[mode] = times.max() / times.mean()
        rows.append(
            [mode, res.per_iteration_seconds, times.mean(), times.max(), spreads[mode]]
        )
    print(
        render_table(
            ["sampling", "per-iter (s)", "mean curv (s)", "max curv (s)", "max/mean"],
            rows,
            title="Curvature sampling granularity at 4096 ranks",
        )
    )
    # utterance granularity creates heavier stragglers...
    assert spreads["utterance"] > 1.3 * spreads["frame"]
    # ...and costs wall-clock time end to end
    assert (
        out["utterance"].per_iteration_seconds
        > out["frame"].per_iteration_seconds
    )
    # but both show nonzero variance (the paper's Fig 3 observation)
    assert spreads["frame"] > 1.01
