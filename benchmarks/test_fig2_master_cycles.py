"""Figure 2: master-process cycle breakdown per function, for the three
one-rack configurations.

Paper shapes asserted:

* as MPI ranks increase, the master "needs to spend more time
  distributing the data (load_data) ... and synchronizing the weights
  (sync_weights_master)";
* time spent waiting in MPI shows up overwhelmingly as IU-empty cycles
  (the instruction unit idles while the library polls).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import breakdown_runs

from repro.harness import render_cycles


def test_fig2_master_cycles(benchmark):
    runs = benchmark.pedantic(breakdown_runs, rounds=1, iterations=1)
    print()
    for cb in runs:
        print(render_cycles(cb.master_cycles, title=f"Fig 2 [{cb.label}] master cycles"))
        print()

    by_label = {cb.label: cb for cb in runs}
    # master load_data (p2p) grows with rank count
    load = [by_label[l].master.p2p["load_data"] for l in ("1024-1-64", "2048-2-32", "4096-4-16")]
    assert load[0] < load[1] < load[2]
    # MPI-wait cycles are dominated by IU_empty
    for cb in runs:
        for fn, cats in cb.master_cycles.items():
            if fn.startswith("mpi:"):
                assert cats.iu_empty > 0.5 * cats.total
    # the master performs no gradient math (workers do)
    for cb in runs:
        assert "gradient_loss" not in cb.master.compute
