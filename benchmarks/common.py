"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure at paper scale (1024-8192
simulated MPI ranks).  The four breakdown figures (2-5) profile the same
three configurations, so those runs are computed once and cached here.

Benchmark conventions:

* heavy harness runs execute exactly once (``benchmark.pedantic`` with
  one round) — these are minutes-long simulations, not microbenchmarks;
* every benchmark prints the regenerated rows/series next to the paper's
  expectation and *asserts the paper's qualitative shape*.
"""

from __future__ import annotations

from functools import lru_cache

from repro.dist import IterationScript
from repro.harness import run_breakdowns, default_workload

PAPER_SCRIPT = IterationScript(
    cg_iters=(15,), heldout_evals=(5,), represented_iterations=30
)
"""One simulated outer iteration standing for a 30-iteration training —
CG depth and held-out evaluation counts sit where real calibration runs
land (see ``repro.harness.calibrate``); 30 is the middle of the paper's
"20 to 40 iterations" convergence range."""


@lru_cache(maxsize=None)
def breakdown_runs():
    """Figs 2-5 share these three one-rack profiling runs."""
    return run_breakdowns(default_workload(50.0), PAPER_SCRIPT)
