"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure at paper scale (1024-8192
simulated MPI ranks).  The four breakdown figures (2-5) profile the same
three configurations, so those runs are computed once and cached here.

Benchmark conventions:

* heavy harness runs execute exactly once (``benchmark.pedantic`` with
  one round) — these are minutes-long simulations, not microbenchmarks;
* every benchmark prints the regenerated rows/series next to the paper's
  expectation and *asserts the paper's qualitative shape*.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.dist import IterationScript
from repro.harness import run_breakdowns, default_workload

PAPER_SCRIPT = IterationScript(
    cg_iters=(15,), heldout_evals=(5,), represented_iterations=30
)
"""One simulated outer iteration standing for a 30-iteration training —
CG depth and held-out evaluation counts sit where real calibration runs
land (see ``repro.harness.calibrate``); 30 is the middle of the paper's
"20 to 40 iterations" convergence range."""


@lru_cache(maxsize=None)
def ensure_linted():
    """Lint the benchmark/example rank programs once per process.

    A minutes-long simulation driven by a script that trips a
    determinism or protocol rule wastes the whole run, so the lint gate
    runs before the first simulation is launched — the same
    ``repro lint`` rules and ``REPRO_SKIP_LINT`` / ``REPRO_LINT_SELECT``
    environment controls as the pytest session gate in ``conftest.py``.
    """
    if os.environ.get("REPRO_SKIP_LINT") == "1":
        return None
    from repro.analysis import LintCache, lint_paths

    raw = os.environ.get("REPRO_LINT_SELECT", "")
    select = [r.strip() for r in raw.split(",") if r.strip()] or None
    root = Path(__file__).resolve().parent.parent
    paths = [str(root / p) for p in ("benchmarks", "examples") if (root / p).exists()]
    cache = (
        None
        if os.environ.get("REPRO_LINT_NO_CACHE") == "1"
        else LintCache.default(root, select)
    )
    report = lint_paths(paths, rule_ids=select, cache=cache)
    if cache is not None:
        cache.save()
    if report.exit_code:
        raise AssertionError(
            "repro lint found findings in benchmark/example scripts:\n"
            + report.render_text()
        )
    return report


@lru_cache(maxsize=None)
def breakdown_runs():
    """Figs 2-5 share these three one-rack profiling runs."""
    ensure_linted()
    return run_breakdowns(default_workload(50.0), PAPER_SCRIPT)
