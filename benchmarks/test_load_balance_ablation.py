"""LB ablation (Section V-C): sorted/balanced utterance partitioning vs
naive round-robin, at paper scale.

"We distributed the data so as to minimize the run-time variation
between workers ... the effect is more apparent when the training data
is scaled to larger sizes."  Asserted: balanced partitioning beats naive
end-to-end, the static imbalance metric explains the gap, and the gap
widens (in absolute seconds per iteration) at the larger corpus.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import PAPER_SCRIPT

from repro.bgq import RunShape
from repro.dist import (
    SimJobConfig,
    imbalance,
    naive_partition,
    balanced_partition,
    simulate_training,
)
from repro.harness import default_workload, render_table
from repro.speech import HmmSpec
from repro.util.rng import spawn

HMM = HmmSpec(length_sigma=0.7)  # long-tailed utterance lengths


def run_ablation():
    out = {}
    for hours in (5.0, 50.0):
        wl = default_workload(hours)
        for part in ("balanced", "naive"):
            cfg = SimJobConfig(
                shape=RunShape.parse("1024-1-64"),
                workload=wl,
                script=PAPER_SCRIPT,
                partitioner=part,
                hmm=HMM,
            )
            out[(hours, part)] = simulate_training(cfg)
    return out


def test_load_balance_ablation(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    rows = []
    for (hours, part), res in out.items():
        rows.append([f"{hours:g}h", part, res.per_iteration_seconds])
    print(render_table(["corpus", "partitioner", "per-iter (s)"], rows, title="LB ablation"))

    for hours in (5.0, 50.0):
        t_bal = out[(hours, "balanced")].per_iteration_seconds
        t_naive = out[(hours, "naive")].per_iteration_seconds
        assert t_naive > t_bal

    # the absolute cost of imbalance grows with data volume
    gap_small = (
        out[(5.0, "naive")].per_iteration_seconds
        - out[(5.0, "balanced")].per_iteration_seconds
    )
    gap_big = (
        out[(50.0, "naive")].per_iteration_seconds
        - out[(50.0, "balanced")].per_iteration_seconds
    )
    assert gap_big > gap_small

    # static imbalance metric: LPT near-perfect, naive visibly off
    import numpy as np

    rng = spawn(0, "lb-ablation")
    mu = np.log(HMM.mean_length) - 0.5 * HMM.length_sigma**2
    lengths = np.clip(
        np.round(rng.lognormal(mu, HMM.length_sigma, 50_000)),
        HMM.min_length,
        HMM.max_length,
    ).astype(int).tolist()
    r_bal = imbalance(balanced_partition(lengths, 1023))
    r_naive = imbalance(naive_partition(lengths, 1023))
    print(f"imbalance at 1023 workers: balanced={r_bal:.4f} naive={r_naive:.4f}")
    assert r_bal < 1.01 < r_naive
