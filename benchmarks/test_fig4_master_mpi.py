"""Figure 4: master MPI time, split into collective and point-to-point,
per function, three configurations.

Paper shapes asserted:

* the master's point-to-point time is the load_data distribution and
  grows with rank count;
* the master's collective time (weight sync + gradient/curvature
  reductions) dominates its p2p time per iteration — the master spends
  most of its MPI life waiting on data-parallel reductions.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import breakdown_runs

from repro.harness import render_mpi_split


def test_fig4_master_mpi(benchmark):
    runs = benchmark.pedantic(breakdown_runs, rounds=1, iterations=1)
    print()
    for cb in runs:
        print(
            render_mpi_split(
                cb.master.collective,
                cb.master.p2p,
                title=f"Fig 4 [{cb.label}] master MPI time (s)",
            )
        )
        print()

    by_label = {cb.label: cb for cb in runs}
    ordered = [by_label[l] for l in ("1024-1-64", "2048-2-32", "4096-4-16")]
    # p2p (load_data) grows with ranks
    p2p = [cb.master_p2p_total for cb in ordered]
    assert p2p[0] < p2p[1] < p2p[2]
    # collective categories present and substantial
    for cb in runs:
        assert cb.master.collective["sync_weights_master"] > 0
        assert cb.master.collective["reduce_gradient"] > 0
        assert cb.master_collective_total > cb.master_p2p_total
