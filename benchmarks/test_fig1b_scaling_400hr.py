"""Figure 1(b): execution time per configuration, 400-hour data, up to
two racks (the ~123 M-parameter model).

Paper shapes asserted:

* the one-rack configuration ordering carries over from Fig 1(a);
* adding the second rack (8192-4-16) yields a further speedup over
  4096-4-16;
* the end-to-end 400-hour training lands in single-digit hours
  ("A DNN on 400 hours can be trained ... in 6.3 hours").

Known deviation (documented in EXPERIMENTS.md): the paper reports only
~22 % gain from the second rack, implying a large non-scaling component
in their implementation that our cleaner reproduction does not have —
our 4096 -> 8192 step is closer to linear, so we assert gain > 15 %
without an upper bound.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import PAPER_SCRIPT

from repro.harness import render_series, run_fig1b

CONFIGS = ("1024-1-64", "2048-2-32", "4096-4-16", "8192-4-16")


def test_fig1b(benchmark):
    points = benchmark.pedantic(
        lambda: run_fig1b(PAPER_SCRIPT, configs=CONFIGS), rounds=1, iterations=1
    )
    hours = {p.label: p.hours for p in points}
    print()
    print(
        render_series(
            [p.label for p in points],
            [p.hours for p in points],
            title="Fig 1(b): 400-hour training time by configuration (hours)",
            unit="h",
        )
    )
    gain = (hours["4096-4-16"] / hours["8192-4-16"] - 1.0) * 100
    print(f"second-rack speedup: {gain:.0f}% (paper: ~22%)")
    print(f"400-hour wall time on 8192-4-16: {hours['8192-4-16']:.1f}h (paper: 6.3h)")
    # one-rack ordering persists on the big model
    assert hours["2048-2-32"] < hours["1024-1-64"]
    # the second rack helps
    assert hours["8192-4-16"] < hours["4096-4-16"]
    assert gain > 15.0
    # single-digit hours for the full 400-hour training
    assert hours["8192-4-16"] < 10.0
